package hypothesis

import (
	"fmt"
	"io"
)

// RenderFindings writes the full FINDINGS report: the per-claim verdicts
// with a per-seed table and the concrete values behind every comparison —
// the refutation evidence when a seed fails. The report is a pure function
// of the Evaluation, which is itself byte-identical at every -parallel
// setting and in both task-granularity modes (the campaign contract), so
// the report is too.
func RenderFindings(w io.Writer, e *Evaluation) {
	fmt.Fprintf(w, "FINDINGS — %d hypotheses on %s\n", len(e.Outcomes), e.Source)
	fmt.Fprintf(w, "matrix: %d cells × %d policies\n", e.Cells, e.Policies)
	fmt.Fprintf(w, "verdicts: %d confirmed, %d supported, %d refuted; %d/%d hold on the reference seed\n",
		e.Confirmed(), e.Supported(), e.Refuted(), e.ReferenceHolds(), len(e.Outcomes))
	for i := range e.Outcomes {
		renderOutcome(w, &e.Outcomes[i])
	}
}

func renderOutcome(w io.Writer, o *Outcome) {
	s := o.Spec
	fmt.Fprintf(w, "\n## %s — %s (tier %d, %d/%d seeds)\n",
		s.ID, o.Status(), s.EffectiveTier(), o.Passed(), len(o.Results))
	fmt.Fprintf(w, "   %s\n", s.Canonical())
	if s.Statement != "" {
		fmt.Fprintf(w, "   > %s\n", s.Statement)
	}
	fmt.Fprintf(w, "   %6s  %-6s  evidence\n", "seed", "result")
	for _, r := range o.Results {
		if r.Err != nil {
			fmt.Fprintf(w, "   %6d  %-6s  %v\n", r.Seed, "ERROR", r.Err)
			continue
		}
		result := "pass"
		if !r.Pass {
			result = "FAIL"
		}
		if s.EffectiveRequire() < len(s.Terms) {
			result += fmt.Sprintf(" (%d/%d held, need %d)", r.Held, len(s.Terms), s.EffectiveRequire())
		}
		fmt.Fprintf(w, "   %6d  %-6s  %s\n", r.Seed, result, evidence(s, r))
	}
}

// evidence renders one seed's comparisons with the concrete values, marking
// the terms that failed.
func evidence(s Spec, r SeedResult) string {
	out := ""
	for i, tr := range r.Terms {
		if i > 0 {
			out += "; "
		}
		t := s.Terms[i]
		op := string(t.Op)
		if t.Op == OpApprox {
			op += fmtFloat(t.Tol) + "%"
		}
		out += fmt.Sprintf("%s %s %s", fmtFloat(tr.Left), op, fmtFloat(tr.Right))
		if !tr.Pass {
			out += " [FAIL]"
		}
	}
	return out
}

// RenderMarkdown writes the claim-checklist table EXPERIMENTS.md embeds:
// one row per claim with its reference-seed status, tier and seed tally.
func RenderMarkdown(w io.Writer, e *Evaluation) {
	fmt.Fprintln(w, "| Status | Tier | Seeds | Claim | Statement |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for i := range e.Outcomes {
		o := &e.Outcomes[i]
		mark := "✓"
		if !o.Reference().Pass {
			mark = "✗"
		}
		statement := o.Spec.Statement
		if statement == "" {
			statement = "`" + o.Spec.Canonical() + "`"
		}
		fmt.Fprintf(w, "| %s | %d | %d/%d | `%s` | %s |\n",
			mark, o.Spec.EffectiveTier(), o.Passed(), len(o.Results), o.Spec.ID, statement)
	}
	fmt.Fprintf(w, "\n**%d/%d claims reproduce on the reference seed; %d/%d hold\nunanimously across their seeds.**\n",
		e.ReferenceHolds(), len(e.Outcomes), e.Confirmed(), len(e.Outcomes))
}
