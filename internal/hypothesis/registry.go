package hypothesis

import (
	"fmt"
	"sort"
	"sync"
)

// The claim registry, mirroring sched's policy registry: packages register
// their claims (normalized) at init time, tools enumerate them. Paper
// claims live in internal/experiments and register themselves when that
// package is linked in.

var (
	regMu   sync.Mutex
	regByID = map[string]Spec{}
	regIDs  []string // registration order
)

// Register validates, normalizes and registers a claim. It panics on an
// invalid or duplicate spec — registration happens at init time, where a
// bad claim is a programming error.
func Register(s Spec) {
	norm, err := s.Normalize()
	if err != nil {
		panic(err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByID[norm.ID]; dup {
		panic(fmt.Sprintf("hypothesis: duplicate claim id %q", norm.ID))
	}
	regByID[norm.ID] = norm
	regIDs = append(regIDs, norm.ID)
}

// Registered returns every registered claim in registration order.
func Registered() []Spec {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Spec, 0, len(regIDs))
	for _, id := range regIDs {
		out = append(out, regByID[id])
	}
	return out
}

// ByID looks a registered claim up.
func ByID(id string) (Spec, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := regByID[id]
	return s, ok
}

// IDs returns the registered claim ids, sorted.
func IDs() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]string(nil), regIDs...)
	sort.Strings(out)
	return out
}
