package hypothesis

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseExemplar(t *testing.T) {
	// The documented exemplar, including the tolerated comma before a
	// clause keyword.
	s, err := Parse("claim fig14: consdyn.nomax < cplant24.nomax.all on unfair_pct, seeds 42..51")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		ID:     "fig14",
		Metric: "unfair_pct",
		Terms: []Term{{
			Left:  Side{Config: Config{Policy: "consdyn.nomax", Scenario: "baseline"}},
			Op:    OpLess,
			Right: Side{Config: Config{Policy: "cplant24.nomax.all", Scenario: "baseline"}},
		}},
		Seeds: []int64{42, 43, 44, 45, 46, 47, 48, 49, 50, 51},
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("Parse = %+v, want %+v", s, want)
	}
	if got, want := s.Canonical(), "claim fig14: consdyn.nomax < cplant24.nomax.all on unfair_pct seeds 42..51"; got != want {
		t.Errorf("Canonical = %q, want %q", got, want)
	}
}

func TestParseFullGrammar(t *testing.T) {
	in := "claim kitchen-sink: fcfs@load=1.5#avg_wait ~5% easy@load-scaled*1.25 " +
		"and consdyn.nomax > 0.5 on unfair_pct require 1 tier 3 seeds 1..3+9+7"
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Terms) != 2 {
		t.Fatalf("terms = %d, want 2", len(s.Terms))
	}
	t0 := s.Terms[0]
	if t0.Op != OpApprox || t0.Tol != 5 {
		t.Errorf("term 0 op = %v tol %v, want ~ 5", t0.Op, t0.Tol)
	}
	if t0.Left.Config != (Config{Policy: "fcfs", Scenario: "load=1.5"}) || t0.Left.Metric != "avg_wait" {
		t.Errorf("term 0 left = %+v", t0.Left)
	}
	if t0.Right.Config != (Config{Policy: "easy", Scenario: "load-scaled"}) || t0.Right.Factor != 1.25 {
		t.Errorf("term 0 right = %+v", t0.Right)
	}
	t1 := s.Terms[1]
	if !t1.Right.IsConst || t1.Right.Const != 0.5 || t1.Op != OpGreater {
		t.Errorf("term 1 = %+v", t1)
	}
	if s.Require != 1 || s.Tier != 3 {
		t.Errorf("require %d tier %d, want 1 3", s.Require, s.Tier)
	}
	if want := []int64{1, 2, 3, 7, 9}; !reflect.DeepEqual(s.Seeds, want) {
		t.Errorf("seeds = %v, want %v", s.Seeds, want)
	}
	// Canonical is reparse-stable.
	c := s.Canonical()
	s2, err := Parse(c)
	if err != nil {
		t.Fatalf("reparse %q: %v", c, err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("round trip: %+v != %+v (canonical %q)", s, s2, c)
	}
	if s2.Canonical() != c {
		t.Errorf("canonical not a fixed point: %q -> %q", c, s2.Canonical())
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse("claim d: fcfs < easy on avg_wait")
	if err != nil {
		t.Fatal(err)
	}
	if s.Tier != 0 || s.EffectiveTier() != 1 {
		t.Errorf("tier = %d (effective %d), want default 1", s.Tier, s.EffectiveTier())
	}
	if s.Seeds != nil || !reflect.DeepEqual(s.EffectiveSeeds(), []int64{42}) {
		t.Errorf("seeds = %v (effective %v), want default {42}", s.Seeds, s.EffectiveSeeds())
	}
	if s.Require != 0 || s.EffectiveRequire() != 1 {
		t.Errorf("require = %d (effective %d)", s.Require, s.EffectiveRequire())
	}
	// tier 1, require == len(terms) and seeds {42} fold away explicitly too.
	s2, err := Parse("claim d: fcfs < easy on avg_wait require 1 tier 1 seeds 42")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("explicit defaults normalize differently: %+v != %+v", s, s2)
	}
}

func TestParseSLOMetric(t *testing.T) {
	s, err := Parse("claim slo: fcfs@slo-tiered < easy@slo-tiered on slo.all.attain_pct")
	if err != nil {
		t.Fatal(err)
	}
	if s.Metric != "slo.all.attain_pct" {
		t.Errorf("metric = %q", s.Metric)
	}
	if _, err := Parse("claim slo: fcfs < easy on slo.all.bogus"); err == nil ||
		!strings.Contains(err.Error(), "unknown field") {
		t.Errorf("bad SLO field error = %v", err)
	}
}

func TestParseErrorsArePositional(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "empty claim spec"},
		{"hypothesis x: a < b", `want the keyword "claim"`},
		{"claim", "want a claim id"},
		{"claim x fcfs < easy on avg_wait", "want ':' after the claim id"},
		{"claim x: fcfs << easy", "position 14: unknown operator"},
		{"claim x: fcfs < easy on bogus", "unknown metric key"},
		{"claim x: bogus < easy on avg_wait", "unknown policy"},
		{"claim x: fcfs@bogus < easy on avg_wait", "scenario"},
		{"claim x: fcfs < easy on avg_wait seeds 9..2", "empty range"},
		{"claim x: fcfs < easy on avg_wait tier 0", "positive integer"},
		{"claim x: fcfs < easy on avg_wait require 2", "out of range"},
		{"claim x: fcfs < easy on avg_wait on avg_tat", "duplicate on clause"},
		{"claim x: fcfs < easy on avg_wait frobnicate", "unexpected token"},
		{"claim x: 1 < 2 on avg_wait", "both sides are constants"},
		{"claim x: fcfs < easy", "names no metric"},
		{"claim x: fcfs ~ easy on avg_wait", "tolerance must end in %"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.in, err, c.want)
		}
	}
}

func TestSeedsRender(t *testing.T) {
	cases := []struct {
		seeds []int64
		want  string
	}{
		{[]int64{42}, "42"},
		{[]int64{42, 43, 44}, "42..44"},
		{[]int64{1, 2, 3, 7, 9, 10}, "1..3+7+9..10"},
	}
	for _, c := range cases {
		if got := fmtSeeds(c.seeds); got != c.want {
			t.Errorf("fmtSeeds(%v) = %q, want %q", c.seeds, got, c.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	// Use ids no real package would register, and unregister on the way
	// out so the test is idempotent under -count=N.
	t.Cleanup(func() {
		regMu.Lock()
		defer regMu.Unlock()
		delete(regByID, "test-registry-a")
		for i, id := range regIDs {
			if id == "test-registry-a" {
				regIDs = append(regIDs[:i], regIDs[i+1:]...)
				break
			}
		}
	})
	Register(Spec{ID: "test-registry-a", Metric: "avg_wait", Terms: []Term{{
		Left: Side{Config: Config{Policy: "fcfs"}}, Op: OpLess,
		Right: Side{Config: Config{Policy: "easy"}},
	}}})
	if _, ok := ByID("test-registry-a"); !ok {
		t.Fatal("registered claim not found")
	}
	found := false
	for _, s := range Registered() {
		if s.ID == "test-registry-a" {
			found = true
		}
	}
	if !found {
		t.Error("Registered() misses the claim")
	}
	didPanic := func(f func()) (p bool) {
		defer func() { p = recover() != nil }()
		f()
		return
	}
	if !didPanic(func() {
		Register(Spec{ID: "test-registry-a", Metric: "avg_wait", Terms: []Term{{
			Left: Side{Config: Config{Policy: "fcfs"}}, Op: OpLess,
			Right: Side{Config: Config{Policy: "easy"}},
		}}})
	}) {
		t.Error("duplicate Register did not panic")
	}
	if !didPanic(func() { Register(Spec{ID: "test-registry-b"}) }) {
		t.Error("invalid Register did not panic")
	}
}
