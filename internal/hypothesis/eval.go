package hypothesis

import (
	"fmt"
	"math"
)

// Resolver resolves one configuration's metric for the seed under test.
// The campaign driver builds one per seed over the cell index; tests can
// supply a map-backed one.
type Resolver func(cfg Config, metric string) (float64, error)

// TermResult is one term's evaluation on one seed. Left and Right are the
// compared values, after the side factors are applied.
type TermResult struct {
	Left  float64
	Right float64
	Pass  bool
}

// SeedResult is one claim's evaluation on one seed.
type SeedResult struct {
	Seed  int64
	Terms []TermResult
	Held  int  // terms that passed
	Pass  bool // Held >= the spec's quorum
	Err   error
}

// Status is a claim's verdict over its seeds.
type Status string

const (
	// StatusConfirmed: the claim held on every seed.
	StatusConfirmed Status = "CONFIRMED"
	// StatusSupported: the claim held on the reference seed (the first in
	// the seeds clause) but not unanimously.
	StatusSupported Status = "SUPPORTED"
	// StatusRefuted: the claim failed on the reference seed.
	StatusRefuted Status = "REFUTED"
)

// Outcome is one claim's evaluation over all its seeds.
type Outcome struct {
	Spec    Spec
	Results []SeedResult // in EffectiveSeeds order
}

// Passed counts the seeds the claim held on.
func (o *Outcome) Passed() int {
	n := 0
	for _, r := range o.Results {
		if r.Pass {
			n++
		}
	}
	return n
}

// Reference returns the reference-seed result (the first seed).
func (o *Outcome) Reference() SeedResult {
	if len(o.Results) == 0 {
		return SeedResult{}
	}
	return o.Results[0]
}

// Unanimous reports whether the claim held on every seed.
func (o *Outcome) Unanimous() bool { return o.Passed() == len(o.Results) }

// Status grades the outcome: CONFIRMED when unanimous, SUPPORTED when the
// reference seed holds, REFUTED otherwise.
func (o *Outcome) Status() Status {
	switch {
	case o.Unanimous():
		return StatusConfirmed
	case o.Reference().Pass:
		return StatusSupported
	default:
		return StatusRefuted
	}
}

// EvaluateSeed evaluates one claim on one seed through the resolver. A
// resolver error (missing cell, metric without SLO data) surfaces in
// SeedResult.Err and the seed counts as failed.
func EvaluateSeed(s Spec, seed int64, resolve Resolver) SeedResult {
	res := SeedResult{Seed: seed, Terms: make([]TermResult, 0, len(s.Terms))}
	for _, t := range s.Terms {
		l, err := sideValue(s, t.Left, resolve)
		if err != nil {
			res.Err = err
			return res
		}
		r, err := sideValue(s, t.Right, resolve)
		if err != nil {
			res.Err = err
			return res
		}
		tr := TermResult{Left: l, Right: r, Pass: compare(t.Op, t.Tol, l, r)}
		if tr.Pass {
			res.Held++
		}
		res.Terms = append(res.Terms, tr)
	}
	res.Pass = res.Held >= s.EffectiveRequire()
	return res
}

// Evaluate runs the claim on every seed, building each seed's resolver
// through mkResolver.
func Evaluate(s Spec, mkResolver func(seed int64) Resolver) Outcome {
	out := Outcome{Spec: s}
	for _, seed := range s.EffectiveSeeds() {
		out.Results = append(out.Results, EvaluateSeed(s, seed, mkResolver(seed)))
	}
	return out
}

// sideValue resolves one side to its compared value: the constant, or the
// configuration's metric scaled by the side factor. The factor multiplies
// exactly as the legacy closures did (factor*value, one float64 multiply).
func sideValue(s Spec, side Side, resolve Resolver) (float64, error) {
	if side.IsConst {
		return side.Const, nil
	}
	metric := side.Metric
	if metric == "" {
		metric = s.Metric
	}
	v, err := resolve(side.Config, metric)
	if err != nil {
		return 0, err
	}
	if side.Factor != 0 {
		v = side.Factor * v
	}
	return v, nil
}

// compare applies the operator with the exact float64 semantics the legacy
// claim closures used (direct comparison, no epsilon).
func compare(op Op, tol, l, r float64) bool {
	switch op {
	case OpLess:
		return l < r
	case OpLessEq:
		return l <= r
	case OpGreater:
		return l > r
	case OpGreaterEq:
		return l >= r
	case OpEq:
		return l == r
	case OpApprox:
		return math.Abs(l-r) <= tol/100*math.Max(math.Abs(l), math.Abs(r))
	}
	panic(fmt.Sprintf("hypothesis: unknown op %q", op))
}
