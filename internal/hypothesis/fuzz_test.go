package hypothesis

import (
	"reflect"
	"testing"
)

// FuzzParseHypothesis checks the grammar's round-trip property, mirroring
// FuzzParseSpec and FuzzParseScenario: any claim spec that parses must have
// a Canonical() form that reparses to the identical normalized Spec, with
// Canonical() a fixed point — so the canonical text is a stable identifier
// for the claim.
func FuzzParseHypothesis(f *testing.F) {
	for _, seed := range []string{
		// Every token form of the grammar.
		"claim fig14: consdyn.nomax < cplant24.nomax.all on unfair_pct, seeds 42..51",
		"claim d: fcfs < easy on avg_wait",
		"claim ops: fcfs <= easy and fcfs >= easy and fcfs = easy on jobs",
		"claim tol: fcfs ~5% easy on avg_wait",
		"claim tol0: fcfs ~0% easy on makespan",
		"claim const: fcfs > 0.5 on util tier 2",
		"claim factor: consdyn.nomax > cplant24.nomax.all*1.5 on avg_miss",
		"claim scen: fcfs@load=1.5 < fcfs@load-scaled on avg_wait seeds 1..3+9",
		"claim chain: order=lxf+bf=easy < easy on avg_bsld",
		"claim widths: cplant24.72max.all#avg_tat_w8 < cplant24.nomax.all#avg_tat_w8 on avg_tat",
		"claim slo: fcfs@slo-tiered < easy@slo-tiered on slo.all.attain_pct",
		"claim quorum: fcfs < easy and lxf < easy and sjf < easy on avg_wait require 2 tier 3",
		"claim seedset: fcfs < easy on avg_wait seeds 1+3+5..9+42",
		"claim defaults: fcfs < easy on avg_wait require 1 tier 1 seeds 42",
		"claim sidemetric: fcfs#avg_wait < easy#avg_tat",
		// Near-misses, to steer mutation at the error paths.
		"claim x: fcfs << easy on avg_wait",
		"claim x fcfs < easy",
		"claim x: 1 < 2 on avg_wait",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return // invalid inputs only need to fail cleanly
		}
		c := s.Canonical()
		s2, err := Parse(c)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %q -> %q: %v", in, c, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the spec:\n in: %q\ncanon: %q\n  was: %+v\n  now: %+v", in, c, s, s2)
		}
		if c2 := s2.Canonical(); c2 != c {
			t.Fatalf("canonical is not a fixed point: %q -> %q", c, c2)
		}
	})
}
