package hypothesis_test

import (
	"strings"
	"testing"

	"fairsched/internal/hypothesis"
	"fairsched/internal/job"
	"fairsched/internal/scenario"
)

func TestParseTraceClause(t *testing.T) {
	s, err := hypothesis.Parse("claim kth-wait: fcfs < 200 on avg_wait trace KTH-SP2 seeds 1..2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Trace != "KTH-SP2" {
		t.Fatalf("trace: %q", s.Trace)
	}
	canon := s.Canonical()
	if !strings.Contains(canon, " trace KTH-SP2") {
		t.Fatalf("canonical lacks trace clause: %q", canon)
	}
	again, err := hypothesis.Parse(canon)
	if err != nil {
		t.Fatalf("canonical %q does not re-parse: %v", canon, err)
	}
	if again.Canonical() != canon {
		t.Fatalf("round-trip drift: %q != %q", again.Canonical(), canon)
	}

	if _, err := hypothesis.Parse("claim a: fcfs < 1 on avg_wait trace x trace y"); err == nil ||
		!strings.Contains(err.Error(), "duplicate trace") {
		t.Fatalf("duplicate trace clause: %v", err)
	}
	if _, err := hypothesis.Parse("claim a: fcfs < 1 on avg_wait trace"); err == nil {
		t.Fatal("trace clause without a value parsed")
	}
}

// tracedJobs builds a workload whose avg_wait under fcfs on 4 nodes is
// directly controlled by the runtime of a head job everything queues
// behind.
func tracedJobs(headRuntime int64) []*job.Job {
	return []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: headRuntime, Estimate: headRuntime, Nodes: 4},
		{ID: 2, User: 2, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
	}
}

func TestRunCampaignTraceScoped(t *testing.T) {
	// Trace "slow" (head runtime 1000): job 2 waits 1000, avg_wait 500.
	// Trace "fast" (head runtime 100): job 2 waits 100, avg_wait 50.
	// The default source would refute both claims — proving each claim
	// resolved against its own trace's cells, not the default.
	opt := hypothesis.CampaignOptions{
		Source: scenario.Jobs("default", tracedJobs(10), 4),
		Sources: []scenario.Source{
			scenario.Jobs("slow", tracedJobs(1000), 4),
			scenario.Jobs("fast", tracedJobs(100), 4),
		},
	}
	specs := make([]hypothesis.Spec, 3)
	for i, text := range []string{
		"claim slow-wait: fcfs = 500 on avg_wait trace slow",
		"claim fast-wait: fcfs = 50 on avg_wait trace fast",
		"claim default-wait: fcfs = 5 on avg_wait",
	} {
		s, err := hypothesis.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = s
	}
	eval, err := hypothesis.RunCampaign(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := eval.Confirmed(); got != 3 {
		for i := range eval.Outcomes {
			t.Logf("%s: %v", eval.Outcomes[i].Spec.ID, eval.Outcomes[i].Status())
		}
		t.Fatalf("confirmed %d of 3 trace-scoped claims", got)
	}
	if eval.Source != "slow, fast, default" {
		t.Fatalf("evaluation source: %q", eval.Source)
	}
	if eval.Cells != 3 {
		t.Fatalf("cells: %d, want 3 (3 traces × 1 scenario × 1 seed)", eval.Cells)
	}
}

func TestRunCampaignUnknownTrace(t *testing.T) {
	s, err := hypothesis.Parse("claim a: fcfs < 1 on avg_wait trace nope")
	if err != nil {
		t.Fatal(err)
	}
	_, err = hypothesis.RunCampaign([]hypothesis.Spec{s}, hypothesis.CampaignOptions{
		Source:  scenario.Jobs("default", tracedJobs(10), 4),
		Sources: []scenario.Source{scenario.Jobs("slow", tracedJobs(1000), 4)},
	})
	if err == nil || !strings.Contains(err.Error(), `no trace "nope"`) {
		t.Fatalf("unknown trace: %v", err)
	}
}
