package hypothesis_test

import (
	"bytes"
	"strings"
	"testing"

	"fairsched/internal/hypothesis"
	"fairsched/internal/job"
	"fairsched/internal/scenario"
)

// goldenJobs is the hand-checkable 4-job workload on a 4-node machine (the
// same shape the SLO campaign golden pins). Under fcfs: job 1 runs 0–100
// (wait 0), job 2 100–300 (wait 100), job 3 300–350 (wait 290), job 4
// 350–650 (wait 340). So avg_wait = 730/4 = 182.5 s, avg_tat =
// (100+300+340+640)/4 = 345 s, util = 2000 proc-sec / (650 s × 4 nodes) =
// 0.7692…, and under slo=p50:1m,default:2m (usage ranking tags users 3 and
// 1 into p50) jobs 3 and 4 breach their wait targets by 230 s and 220 s.
func goldenJobs() []*job.Job {
	return []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
		{ID: 2, User: 2, Submit: 0, Runtime: 200, Estimate: 200, Nodes: 4},
		{ID: 3, User: 3, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 4},
		{ID: 4, User: 4, Submit: 10, Runtime: 300, Estimate: 300, Nodes: 2},
	}
}

// goldenSpecs covers every verdict and every report feature the grammar can
// produce: dominance across metrics, exact and approximate constants, a
// quorum with a failing term, an SLO metric behind an @scenario, a
// multi-seed confirmation (the in-memory source ignores the seed, so every
// seed agrees) and one deliberate refutation.
func goldenSpecs(t *testing.T) []hypothesis.Spec {
	t.Helper()
	texts := []string{
		"claim wait-below-tat: fcfs#avg_wait < fcfs#avg_tat",
		"claim exact-avg-wait: fcfs = 182.5 on avg_wait",
		"claim util-approx: fcfs ~1% 0.77 on util",
		"claim wait-quorum: fcfs < 100 and fcfs < 200 on avg_wait require 1",
		"claim slo-breaches: fcfs@slo=p50:1m,default:2m = 2 on slo.all.breached",
		"claim multi-seed: fcfs < 200 on avg_wait seeds 1..3",
		"claim refuted: fcfs > 200 on avg_wait tier 3",
	}
	specs := make([]hypothesis.Spec, len(texts))
	for i, text := range texts {
		s, err := hypothesis.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = s
	}
	specs[0].Statement = "every job waits less than it turns around"
	return specs
}

func goldenOptions(parallel int, policyParallel bool) hypothesis.CampaignOptions {
	return hypothesis.CampaignOptions{
		Source:         scenario.Jobs("golden", goldenJobs(), 4),
		Parallel:       parallel,
		PolicyParallel: policyParallel,
	}
}

// TestFindingsGolden pins the FINDINGS report byte-for-byte on the
// hand-checked workload: every evidence value in the expected text is
// derivable with pencil and paper from goldenJobs' schedule.
func TestFindingsGolden(t *testing.T) {
	eval, err := hypothesis.RunCampaign(goldenSpecs(t), goldenOptions(1, false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	hypothesis.RenderFindings(&buf, eval)
	const want = `FINDINGS — 7 hypotheses on golden
matrix: 8 cells × 1 policies
verdicts: 6 confirmed, 0 supported, 1 refuted; 6/7 hold on the reference seed

## wait-below-tat — CONFIRMED (tier 1, 1/1 seeds)
   claim wait-below-tat: fcfs#avg_wait < fcfs#avg_tat
   > every job waits less than it turns around
     seed  result  evidence
       42  pass    182.5 < 345

## exact-avg-wait — CONFIRMED (tier 1, 1/1 seeds)
   claim exact-avg-wait: fcfs = 182.5 on avg_wait
     seed  result  evidence
       42  pass    182.5 = 182.5

## util-approx — CONFIRMED (tier 1, 1/1 seeds)
   claim util-approx: fcfs ~1% 0.77 on util
     seed  result  evidence
       42  pass    0.7692307692307693 ~1% 0.77

## wait-quorum — CONFIRMED (tier 1, 1/1 seeds)
   claim wait-quorum: fcfs < 100 and fcfs < 200 on avg_wait require 1
     seed  result  evidence
       42  pass (1/2 held, need 1)  182.5 < 100 [FAIL]; 182.5 < 200

## slo-breaches — CONFIRMED (tier 1, 1/1 seeds)
   claim slo-breaches: fcfs@slo=p50:1m,default:2m = 2 on slo.all.breached
     seed  result  evidence
       42  pass    2 = 2

## multi-seed — CONFIRMED (tier 1, 3/3 seeds)
   claim multi-seed: fcfs < 200 on avg_wait seeds 1..3
     seed  result  evidence
        1  pass    182.5 < 200
        2  pass    182.5 < 200
        3  pass    182.5 < 200

## refuted — REFUTED (tier 3, 0/1 seeds)
   claim refuted: fcfs > 200 on avg_wait tier 3
     seed  result  evidence
       42  FAIL    182.5 > 200 [FAIL]
`
	if got := buf.String(); got != want {
		t.Fatalf("FINDINGS diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if failed := eval.GateFailed(2); len(failed) != 0 {
		t.Fatalf("tier-3 refutation must not gate, got %v", failed)
	}
	if failed := eval.GateFailed(3); len(failed) != 1 || failed[0] != "refuted" {
		t.Fatalf("gate at tier 3 = %v, want [refuted]", failed)
	}
}

// TestFindingsDeterministicAcrossParallelism: the FINDINGS report (and the
// Markdown table) must be byte-identical at every worker count and in both
// task-granularity modes — the campaign contract carried through the
// hypothesis layer.
func TestFindingsDeterministicAcrossParallelism(t *testing.T) {
	render := func(parallel int, policyParallel bool) (string, string) {
		eval, err := hypothesis.RunCampaign(goldenSpecs(t), goldenOptions(parallel, policyParallel))
		if err != nil {
			t.Fatal(err)
		}
		var findings, md bytes.Buffer
		hypothesis.RenderFindings(&findings, eval)
		hypothesis.RenderMarkdown(&md, eval)
		return findings.String(), md.String()
	}
	serialF, serialMD := render(1, false)
	if !strings.Contains(serialF, "FINDINGS") {
		t.Fatal("no FINDINGS header")
	}
	if parF, parMD := render(8, false); parF != serialF || parMD != serialMD {
		t.Fatal("cell-mode report differs between -parallel 1 and 8")
	}
	if ppF, ppMD := render(8, true); ppF != serialF || ppMD != serialMD {
		t.Fatal("policy-parallel report differs from cell mode")
	}
}
