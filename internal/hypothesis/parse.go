package hypothesis

import (
	"fmt"
	"strconv"
	"strings"
)

// The claim grammar, mirroring sched.ParseSpec's style (whitespace instead
// of '+' as the separator, positional errors naming the offending token):
//
//	claim <id>: <term> [and <term>]... [on <metric>] [trace <name>]
//	                                   [require <k>] [tier <n>] [seeds <ranges>]
//	term   := <side> <op> <side>
//	side   := <number> | <policy>[@<scenario>][#<metric>][*<factor>]
//	op     := < | <= | > | >= | = | ~<tol>%
//	ranges := <group>[+<group>]...   group := <seed> | <a>..<b>
//
// Policies parse through sched.ParseSpec (registered names or
// order=/bf=/... chains) and scenarios through scenario.Parse (builtins or
// load=/slo=/... chains), so the claim grammar composes with both spec
// grammars instead of duplicating them. A comma before a clause keyword is
// tolerated ("... on unfair_pct, seeds 42..51" parses), since the prose
// form reads naturally with one.

// clause keywords that may follow the term list.
var clauseKeywords = map[string]bool{
	"and": true, "on": true, "trace": true, "require": true, "tier": true, "seeds": true,
}

type token struct {
	s   string
	pos int // byte position in the input
}

// tokenize splits the input on whitespace, keeping byte positions, and
// strips one trailing comma from a token when the next token is a clause
// keyword.
func tokenize(in string) []token {
	var toks []token
	i := 0
	for i < len(in) {
		for i < len(in) && (in[i] == ' ' || in[i] == '\t' || in[i] == '\n' || in[i] == '\r') {
			i++
		}
		j := i
		for j < len(in) && in[j] != ' ' && in[j] != '\t' && in[j] != '\n' && in[j] != '\r' {
			j++
		}
		if j > i {
			toks = append(toks, token{s: in[i:j], pos: i})
		}
		i = j
	}
	for k := 0; k+1 < len(toks); k++ {
		if strings.HasSuffix(toks[k].s, ",") && clauseKeywords[toks[k+1].s] {
			toks[k].s = strings.TrimSuffix(toks[k].s, ",")
		}
	}
	return toks
}

type parser struct {
	in   string
	toks []token
	i    int
}

func (p *parser) done() bool { return p.i >= len(p.toks) }

func (p *parser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.i].s
}

func (p *parser) next() token {
	t := p.toks[p.i]
	p.i++
	return t
}

// errAt wraps an error with the claim spec and a byte position.
func (p *parser) errAt(pos int, format string, args ...any) error {
	return fmt.Errorf("hypothesis: claim spec %q: position %d: %s", p.in, pos, fmt.Sprintf(format, args...))
}

func (p *parser) errEnd(format string, args ...any) error {
	return p.errAt(len(p.in), format, args...)
}

// Parse parses one claim in the grammar above and returns it normalized.
func Parse(in string) (Spec, error) {
	p := &parser{in: in, toks: tokenize(in)}
	if p.done() {
		return Spec{}, fmt.Errorf("hypothesis: empty claim spec")
	}
	if kw := p.next(); kw.s != "claim" {
		return Spec{}, p.errAt(kw.pos, "want the keyword \"claim\", got %q", kw.s)
	}
	if p.done() {
		return Spec{}, p.errEnd("want a claim id after \"claim\"")
	}
	var s Spec
	id := p.next()
	s.ID = strings.TrimSuffix(id.s, ":")
	if s.ID == "" {
		return Spec{}, p.errAt(id.pos, "empty claim id")
	}
	if !strings.HasSuffix(id.s, ":") {
		if p.peek() != ":" {
			return Spec{}, p.errAt(id.pos+len(id.s), "want ':' after the claim id %q", s.ID)
		}
		p.next()
	}

	// Terms, separated by "and".
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Spec{}, err
		}
		s.Terms = append(s.Terms, t)
		if p.peek() != "and" {
			break
		}
		p.next()
	}

	// Clauses, each at most once, in any order.
	seen := map[string]int{}
	for !p.done() {
		kw := p.next()
		if !clauseKeywords[kw.s] {
			return Spec{}, p.errAt(kw.pos, "unexpected token %q (want on, trace, require, tier or seeds)", kw.s)
		}
		if prev, dup := seen[kw.s]; dup {
			return Spec{}, p.errAt(kw.pos, "duplicate %s clause (first at position %d)", kw.s, prev)
		}
		seen[kw.s] = kw.pos
		if p.done() {
			return Spec{}, p.errEnd("%s clause is missing its value", kw.s)
		}
		val := p.next()
		switch kw.s {
		case "on":
			s.Metric = val.s
		case "trace":
			s.Trace = val.s
		case "require":
			n, err := strconv.Atoi(val.s)
			if err != nil || n < 1 {
				return Spec{}, p.errAt(val.pos, "require %q: want a positive term count", val.s)
			}
			s.Require = n
		case "tier":
			n, err := strconv.Atoi(val.s)
			if err != nil || n < 1 {
				return Spec{}, p.errAt(val.pos, "tier %q: want a positive integer", val.s)
			}
			s.Tier = n
		case "seeds":
			seeds, err := parseSeeds(val.s)
			if err != nil {
				return Spec{}, p.errAt(val.pos, "%v", err)
			}
			s.Seeds = seeds
		}
	}

	norm, err := s.Normalize()
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in claim spec %q)", err, in)
	}
	return norm, nil
}

func (p *parser) parseTerm() (Term, error) {
	var t Term
	if p.done() {
		return t, p.errEnd("want a term (<side> <op> <side>)")
	}
	lhs := p.next()
	var err error
	if t.Left, err = parseSide(lhs.s); err != nil {
		return t, p.errAt(lhs.pos, "left side %q: %v", lhs.s, err)
	}
	if p.done() {
		return t, p.errEnd("want an operator after %q", lhs.s)
	}
	op := p.next()
	if t.Op, t.Tol, err = parseOp(op.s); err != nil {
		return t, p.errAt(op.pos, "%v", err)
	}
	if p.done() {
		return t, p.errEnd("want a right side after %q", op.s)
	}
	rhs := p.next()
	if t.Right, err = parseSide(rhs.s); err != nil {
		return t, p.errAt(rhs.pos, "right side %q: %v", rhs.s, err)
	}
	return t, nil
}

// parseOp parses a comparison operator token; "~<tol>%" carries the
// equivalence tolerance in percent.
func parseOp(tok string) (Op, float64, error) {
	switch Op(tok) {
	case OpLess, OpLessEq, OpGreater, OpGreaterEq, OpEq:
		return Op(tok), 0, nil
	}
	if rest, ok := strings.CutPrefix(tok, string(OpApprox)); ok {
		pct, ok := strings.CutSuffix(rest, "%")
		if !ok {
			return "", 0, fmt.Errorf("operator %q: tolerance must end in %% (e.g. ~5%%)", tok)
		}
		tol, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return "", 0, fmt.Errorf("operator %q: tolerance %q: %v", tok, pct, err)
		}
		return OpApprox, tol, nil
	}
	return "", 0, fmt.Errorf("unknown operator %q (want <, <=, >, >=, = or ~<tol>%%)", tok)
}

// parseSide parses one operand: a number, or
// policy[@scenario][#metric][*factor]. Policy and scenario validation
// happens in Normalize, which has the claim-level metric for context.
func parseSide(tok string) (Side, error) {
	if tok == "" {
		return Side{}, fmt.Errorf("empty side")
	}
	if v, err := strconv.ParseFloat(tok, 64); err == nil {
		return Side{Const: v, IsConst: true}, nil
	}
	var side Side
	rest := tok
	if i := strings.LastIndex(rest, "*"); i >= 0 {
		f, err := strconv.ParseFloat(rest[i+1:], 64)
		if err != nil {
			return Side{}, fmt.Errorf("factor %q: %v", rest[i+1:], err)
		}
		side.Factor = f
		rest = rest[:i]
	}
	if i := strings.LastIndex(rest, "#"); i >= 0 {
		side.Metric = rest[i+1:]
		if side.Metric == "" {
			return Side{}, fmt.Errorf("empty metric after '#'")
		}
		rest = rest[:i]
	}
	if pol, scen, found := strings.Cut(rest, "@"); found {
		if scen == "" {
			return Side{}, fmt.Errorf("empty scenario after '@'")
		}
		side.Config = Config{Policy: pol, Scenario: scen}
	} else {
		side.Config = Config{Policy: rest}
	}
	if side.Config.Policy == "" {
		return Side{}, fmt.Errorf("empty policy")
	}
	return side, nil
}

// ParseSeeds parses the seeds-clause grammar standalone — "+"-joined
// groups, each a single seed or an inclusive "a..b" range — for CLI flags
// that override a claim's seeds.
func ParseSeeds(tok string) ([]int64, error) { return parseSeeds(tok) }

// parseSeeds parses "+"-joined seed groups, each a single seed or an
// inclusive "a..b" range.
func parseSeeds(tok string) ([]int64, error) {
	var seeds []int64
	for _, group := range strings.Split(tok, "+") {
		a, b, isRange := strings.Cut(group, "..")
		lo, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seeds %q: group %q: %v", tok, group, err)
		}
		hi := lo
		if isRange {
			if hi, err = strconv.ParseInt(b, 10, 64); err != nil {
				return nil, fmt.Errorf("seeds %q: group %q: %v", tok, group, err)
			}
			if hi < lo {
				return nil, fmt.Errorf("seeds %q: group %q: empty range (%d > %d)", tok, group, lo, hi)
			}
			if hi-lo >= 10_000 {
				return nil, fmt.Errorf("seeds %q: group %q: range spans %d seeds (max 10000)", tok, group, hi-lo+1)
			}
		}
		for v := lo; v <= hi; v++ {
			seeds = append(seeds, v)
		}
	}
	return seeds, nil
}
