package hypothesis

import (
	"fmt"
	"sort"
	"strings"

	"fairsched/internal/core"
	"fairsched/internal/metrics"
	"fairsched/internal/scenario"
	"fairsched/internal/slo"
	"fairsched/internal/sweep"
)

// CampaignOptions configures how a batch of claims expands into a campaign.
type CampaignOptions struct {
	// Source is the workload every unscoped configuration runs on (a trace
	// file or a synthetic generator).
	Source scenario.Source
	// Sources are the named traces claims may scope to with a trace clause
	// (typically scenario.ManifestSources over a trace-set manifest). A
	// claim's Trace must match one Name here; unscoped claims keep running
	// on Source.
	Sources []scenario.Source
	// Study configures the simulator (system size, fairshare decay, ...).
	Study core.StudyConfig
	// Parallel bounds the worker pool; PolicyParallel promotes the policy
	// axis into the parallel grid. Both are pure scheduling knobs: the
	// evaluation, and any report rendered from it, is byte-identical at
	// every setting (the campaign contract).
	Parallel       int
	PolicyParallel bool
	// Seeds overrides every claim's seeds clause when non-empty (the CLI's
	// -seeds flag).
	Seeds []int64
}

// Evaluation is the outcome of running a batch of claims as one campaign.
type Evaluation struct {
	Source   string
	Outcomes []Outcome // spec order
	// Cells and Policies describe the expanded matrix, for report headers.
	Cells    int
	Policies int
}

// Confirmed, Supported and Refuted count outcomes by status.
func (e *Evaluation) Confirmed() int { return e.countStatus(StatusConfirmed) }
func (e *Evaluation) Supported() int { return e.countStatus(StatusSupported) }
func (e *Evaluation) Refuted() int   { return e.countStatus(StatusRefuted) }

func (e *Evaluation) countStatus(st Status) int {
	n := 0
	for i := range e.Outcomes {
		if e.Outcomes[i].Status() == st {
			n++
		}
	}
	return n
}

// ReferenceHolds counts the claims whose reference seed passed.
func (e *Evaluation) ReferenceHolds() int {
	n := 0
	for i := range e.Outcomes {
		if e.Outcomes[i].Reference().Pass {
			n++
		}
	}
	return n
}

// GateFailed returns the tier ≤ maxTier claims that refuted — the claims a
// CI gate at that tier fails on.
func (e *Evaluation) GateFailed(maxTier int) []string {
	var ids []string
	for i := range e.Outcomes {
		o := &e.Outcomes[i]
		if o.Spec.EffectiveTier() <= maxTier && o.Status() == StatusRefuted {
			ids = append(ids, o.Spec.ID)
		}
	}
	return ids
}

// cellKey indexes the campaign's cells by the axes a claim addresses.
type cellKey struct {
	Source   string
	Scenario string
	Seed     int64
}

// cellData is one cell's per-policy summaries.
type cellData struct {
	summaries map[string]*metrics.Summary
	slos      map[string]*slo.Summary
}

// RunCampaign expands the claims into one campaign — the union of their
// scenarios and seeds as the matrix, the union of their policies in every
// cell — runs it through sweep.Campaign (cell-unit or policy-parallel, per
// the options) and evaluates every claim against the resulting summaries.
//
// Specs must be normalized (Parse and Register output always is). The
// matrix axes are assembled deterministically: scenarios and policies in
// first-appearance order over the claims, seeds ascending — so the campaign
// (and its report) is a pure function of the claim batch.
func RunCampaign(specs []Spec, opt CampaignOptions) (*Evaluation, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("hypothesis: no claims to run")
	}
	for i := range specs {
		norm, err := specs[i].Normalize()
		if err != nil {
			return nil, err
		}
		specs[i] = norm
		if len(opt.Seeds) > 0 {
			specs[i].Seeds = append([]int64(nil), opt.Seeds...)
			if specs[i], err = specs[i].Normalize(); err != nil {
				return nil, err
			}
		}
	}

	// Union the axes in deterministic order. The trace axis: unscoped
	// claims run on the default Source; a trace clause selects a named
	// source, in first-appearance order over the claims.
	var (
		scenNames  []string
		scenSeen   = map[string]bool{}
		polKeys    []string
		polSeen    = map[string]bool{}
		seedSet    = map[int64]bool{}
		seedsUnion []int64
		srcs       []scenario.Source
		srcSeen    = map[string]bool{}
	)
	srcName := func(trace string) string {
		if trace == "" {
			return opt.Source.Name
		}
		return trace
	}
	for _, s := range specs {
		if s.Trace == "" {
			if !srcSeen[opt.Source.Name] {
				if opt.Source.Load == nil {
					return nil, fmt.Errorf("hypothesis: claim %s names no trace and the campaign has no default source", s.ID)
				}
				srcSeen[opt.Source.Name] = true
				srcs = append(srcs, opt.Source)
			}
		} else if !srcSeen[s.Trace] {
			found := false
			for _, src := range opt.Sources {
				if src.Name == s.Trace {
					srcSeen[s.Trace] = true
					srcs = append(srcs, src)
					found = true
					break
				}
			}
			if !found {
				avail := make([]string, len(opt.Sources))
				for i, src := range opt.Sources {
					avail[i] = src.Name
				}
				return nil, fmt.Errorf("hypothesis: claim %s: no trace %q in the campaign's trace set (have: %v)", s.ID, s.Trace, avail)
			}
		}
	}
	for _, s := range specs {
		for _, t := range s.Terms {
			for _, side := range []Side{t.Left, t.Right} {
				if side.IsConst {
					continue
				}
				if !scenSeen[side.Config.Scenario] {
					scenSeen[side.Config.Scenario] = true
					scenNames = append(scenNames, side.Config.Scenario)
				}
				if !polSeen[side.Config.Policy] {
					polSeen[side.Config.Policy] = true
					polKeys = append(polKeys, side.Config.Policy)
				}
			}
		}
		for _, seed := range s.EffectiveSeeds() {
			if !seedSet[seed] {
				seedSet[seed] = true
				seedsUnion = append(seedsUnion, seed)
			}
		}
	}
	sort.Slice(seedsUnion, func(i, j int) bool { return seedsUnion[i] < seedsUnion[j] })

	scens := make([]scenario.Scenario, len(scenNames))
	for i, name := range scenNames {
		sc, err := scenario.Parse(name)
		if err != nil {
			return nil, fmt.Errorf("hypothesis: scenario %q: %w", name, err)
		}
		scens[i] = sc
	}
	pols := make([]core.Spec, len(polKeys))
	for i, key := range polKeys {
		sp, err := core.SpecByKey(key)
		if err != nil {
			return nil, fmt.Errorf("hypothesis: policy %q: %w", key, err)
		}
		pols[i] = sp
	}

	camp := sweep.Campaign{
		Sources:        srcs,
		Scenarios:      scens,
		Seeds:          seedsUnion,
		Specs:          pols,
		Study:          opt.Study,
		Parallel:       opt.Parallel,
		PolicyParallel: opt.PolicyParallel,
	}
	cells, err := camp.Run()
	if err != nil {
		return nil, err
	}

	// Index the cells. Failed cells (nil slots) simply stay unindexed; the
	// claims that need them report the miss per seed.
	index := make(map[cellKey]*cellData, len(cells))
	for _, cell := range cells {
		if cell == nil {
			continue
		}
		cd := &cellData{
			summaries: make(map[string]*metrics.Summary, len(cell.Policies)),
			slos:      make(map[string]*slo.Summary, len(cell.Policies)),
		}
		for i, pol := range cell.Policies {
			cd.summaries[pol] = cell.Summaries[i]
			if cell.SLOs != nil {
				cd.slos[pol] = cell.SLOs[i]
			}
		}
		index[cellKey{Source: cell.Source, Scenario: cell.Scenario, Seed: cell.Seed}] = cd
	}

	names := make([]string, len(srcs))
	for i, src := range srcs {
		names[i] = src.Name
	}
	eval := &Evaluation{
		Source:   strings.Join(names, ", "),
		Cells:    len(srcs) * len(scens) * len(seedsUnion),
		Policies: len(pols),
	}
	for _, s := range specs {
		spec := s
		eval.Outcomes = append(eval.Outcomes, Evaluate(spec, func(seed int64) Resolver {
			return func(cfg Config, metric string) (float64, error) {
				key := cellKey{Source: srcName(spec.Trace), Scenario: cfg.Scenario, Seed: seed}
				cd, ok := index[key]
				if !ok {
					return 0, fmt.Errorf("hypothesis: cell (%s × %s × seed %d) did not complete", key.Source, cfg.Scenario, seed)
				}
				return resolveMetric(cd.summaries[cfg.Policy], cd.slos[cfg.Policy], metric)
			}
		}))
	}
	return eval, nil
}
