// Package hypothesis turns the repo's correctness claims into executable,
// falsifiable specs. A Spec names configurations — (policy × scenario)
// points of the campaign matrix — a metric key, a direction (dominance,
// equivalence within tolerance, or an exact invariant) and the seeds the
// claim must hold under; the harness expands the specs into campaign cells,
// applies each test per seed and renders a deterministic FINDINGS report.
//
// The design follows the hypotheses libraries grown around inference
// simulators (dominance comparisons, liveness invariants, seeded
// confirmation rounds, machine-checked FINDINGS documents): claims stop
// being prose in EXPERIMENTS.md and become regression tests over the
// scheduling design space. Specs live as data — a Go registry plus a small
// text grammar mirroring sched.ParseSpec — so every new policy or scenario
// axis gets a cheap way to state what it should change.
package hypothesis

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"fairsched/internal/scenario"
	"fairsched/internal/sched"
)

// DefaultSeed is the seed a spec without a seeds clause runs under — the
// reference seed of the whole reproduction (EXPERIMENTS.md's tables).
const DefaultSeed = 42

// Op is a comparison direction between the two sides of a term.
type Op string

// The comparison directions of the grammar. OpApprox carries a tolerance
// (Term.Tol, in percent): |l−r| ≤ Tol/100 · max(|l|,|r|). OpEq is exact
// floating-point equality — the deterministic-invariant form (identical
// metrics between two configurations, or a metric pinned to a constant).
const (
	OpLess      Op = "<"
	OpLessEq    Op = "<="
	OpGreater   Op = ">"
	OpGreaterEq Op = ">="
	OpEq        Op = "="
	OpApprox    Op = "~"
)

// Config is one (policy × scenario) point of the campaign matrix.
type Config struct {
	// Policy is a registered policy name or component chain (sched.ParseSpec).
	Policy string
	// Scenario is a builtin scenario name or transform chain
	// (scenario.Parse); "" and "baseline" both mean the untransformed trace.
	Scenario string
}

// String renders the config in grammar form.
func (c Config) String() string {
	if c.Scenario == "" || c.Scenario == "baseline" {
		return c.Policy
	}
	return c.Policy + "@" + c.Scenario
}

// Side is one operand of a term: either a constant, or a configuration's
// metric, optionally scaled by a factor (the grammar's "*1.5" suffix — the
// paper's ">1.5× baseline" outlier claim).
type Side struct {
	Config Config
	// Metric overrides the spec-level metric for this side ("" inherits).
	Metric string
	// Factor scales the resolved value before comparison; 0 means none.
	Factor float64
	// Const is the literal value when IsConst (invariant right-hand sides).
	Const   float64
	IsConst bool
}

// Term is one comparison. A claim holds on a seed when at least Require of
// its terms hold (all of them, by default).
type Term struct {
	Left  Side
	Op    Op
	Tol   float64 // percent, for OpApprox
	Right Side
}

// Spec is one falsifiable claim, pure data. The zero values mean: scenario
// baseline, tier 1, all terms required, seeds {DefaultSeed}.
type Spec struct {
	// ID is the claim's identifier (e.g. "fig14-consdyn-fewest-unfair").
	ID string
	// Statement is the prose form, carried by Go-registered claims and
	// shown in reports; it is not part of the grammar.
	Statement string
	// Tier grades how strictly the claim gates: tier 1 claims must confirm
	// in CI (the reproduction's invariant-grade results), tier 2 are
	// reference-confirmed but seed-fragile, tier 3 are recorded as fragile
	// or refuted and never gate. 0 means tier 1.
	Tier int
	// Metric is the default metric key for sides that don't name their own
	// (metrics.ValueByKey keys, or "slo.<class>.<field>").
	Metric string
	// Trace scopes the claim to one named trace of the campaign's trace set
	// (a manifest entry name, CampaignOptions.Sources). "" means the
	// campaign's default source — every pre-manifest claim is unscoped.
	Trace string
	// Terms are the comparisons; Require is the quorum (0: all).
	Terms   []Term
	Require int
	// Seeds are the campaign seeds the claim is tested under, ascending;
	// empty means {DefaultSeed}. The first seed is the reference seed the
	// claim's confirmed/refuted verdict keys on.
	Seeds []int64
}

// EffectiveSeeds returns the seeds the spec runs under.
func (s Spec) EffectiveSeeds() []int64 {
	if len(s.Seeds) == 0 {
		return []int64{DefaultSeed}
	}
	return s.Seeds
}

// EffectiveTier returns the spec's tier with the default applied.
func (s Spec) EffectiveTier() int {
	if s.Tier == 0 {
		return 1
	}
	return s.Tier
}

// EffectiveRequire returns the term quorum with the default applied.
func (s Spec) EffectiveRequire() int {
	if s.Require == 0 {
		return len(s.Terms)
	}
	return s.Require
}

// Normalize validates the spec and returns its canonical form: policy keys
// and scenario names resolved through their grammars, side metrics equal to
// the spec metric cleared, factor 1 cleared, seeds sorted and deduplicated,
// defaults (tier 1, quorum all, baseline scenario) folded to zero values.
// Parse normalizes; Go-registered specs go through Register, which does too.
func (s Spec) Normalize() (Spec, error) {
	if s.ID == "" {
		return s, fmt.Errorf("hypothesis: claim has no id")
	}
	if strings.ContainsAny(s.ID, " \t\n:") {
		return s, fmt.Errorf("hypothesis: claim id %q may not contain whitespace or ':'", s.ID)
	}
	if len(s.Terms) == 0 {
		return s, fmt.Errorf("hypothesis: claim %s has no terms", s.ID)
	}
	if s.Metric != "" {
		if err := validMetricKey(s.Metric); err != nil {
			return s, fmt.Errorf("hypothesis: claim %s: %w", s.ID, err)
		}
	}
	if strings.ContainsAny(s.Trace, " \t\n\r,:") {
		// The trace name must survive the grammar's whitespace tokenization
		// (and the comma-before-keyword trimming) to round-trip canonically.
		return s, fmt.Errorf("hypothesis: claim %s: trace name %q may not contain whitespace, ',' or ':'", s.ID, s.Trace)
	}
	terms := make([]Term, len(s.Terms))
	for i, t := range s.Terms {
		var err error
		if terms[i], err = s.normalizeTerm(t); err != nil {
			return s, fmt.Errorf("hypothesis: claim %s: term %d: %w", s.ID, i+1, err)
		}
	}
	s.Terms = terms
	if s.Require < 0 || s.Require > len(s.Terms) {
		return s, fmt.Errorf("hypothesis: claim %s: require %d out of range (1..%d)", s.ID, s.Require, len(s.Terms))
	}
	if s.Require == len(s.Terms) {
		s.Require = 0
	}
	if s.Tier == 1 {
		s.Tier = 0
	}
	if s.Tier < 0 {
		return s, fmt.Errorf("hypothesis: claim %s: tier %d out of range (>= 1)", s.ID, s.Tier)
	}
	seeds := append([]int64(nil), s.Seeds...)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	seeds = slicesCompact(seeds)
	if len(seeds) == 1 && seeds[0] == DefaultSeed {
		seeds = nil
	}
	s.Seeds = seeds
	return s, nil
}

func (s Spec) normalizeTerm(t Term) (Term, error) {
	switch t.Op {
	case OpLess, OpLessEq, OpGreater, OpGreaterEq, OpEq:
		if t.Tol != 0 {
			return t, fmt.Errorf("tolerance only applies to ~")
		}
	case OpApprox:
		if t.Tol < 0 || math.IsNaN(t.Tol) || math.IsInf(t.Tol, 0) {
			return t, fmt.Errorf("tolerance %v out of range (>= 0 percent)", t.Tol)
		}
	default:
		return t, fmt.Errorf("unknown op %q (want <, <=, >, >=, = or ~)", t.Op)
	}
	if t.Left.IsConst && t.Right.IsConst {
		return t, fmt.Errorf("both sides are constants")
	}
	var err error
	if t.Left, err = s.normalizeSide(t.Left); err != nil {
		return t, err
	}
	if t.Right, err = s.normalizeSide(t.Right); err != nil {
		return t, err
	}
	return t, nil
}

func (s Spec) normalizeSide(side Side) (Side, error) {
	if side.IsConst {
		if math.IsNaN(side.Const) || math.IsInf(side.Const, 0) {
			return side, fmt.Errorf("constant %v is not finite", side.Const)
		}
		if side.Factor != 0 || side.Metric != "" || side.Config != (Config{}) {
			return side, fmt.Errorf("a constant side carries no config, metric or factor")
		}
		return side, nil
	}
	pol, err := sched.ParseSpec(side.Config.Policy)
	if err != nil {
		return side, err
	}
	side.Config.Policy = pol.Key
	scen := side.Config.Scenario
	if scen == "" {
		scen = "baseline"
	}
	sc, err := scenario.Parse(scen)
	if err != nil {
		return side, err
	}
	side.Config.Scenario = sc.Name
	// The side must re-tokenize as one token with the same splits; both
	// sub-grammars are whitespace-free and never use @/#/* but tolerate
	// stray spaces in a few list positions, so guard explicitly.
	for _, part := range []string{side.Config.Policy, side.Config.Scenario} {
		if strings.ContainsAny(part, " \t\n\r@#*") {
			return side, fmt.Errorf("%q contains a character reserved by the claim grammar (whitespace, @, # or *)", part)
		}
	}
	if side.Metric == s.Metric {
		side.Metric = ""
	}
	if side.Metric != "" {
		if err := validMetricKey(side.Metric); err != nil {
			return side, err
		}
	}
	if side.Metric == "" && s.Metric == "" {
		return side, fmt.Errorf("side %s names no metric and the claim has no default (add #<metric> or an 'on' clause)", side.Config)
	}
	if side.Factor == 1 {
		side.Factor = 0
	}
	if side.Factor < 0 || math.IsNaN(side.Factor) || math.IsInf(side.Factor, 0) {
		return side, fmt.Errorf("factor %v out of range (> 0)", side.Factor)
	}
	return side, nil
}

// slicesCompact removes adjacent duplicates from a sorted slice.
func slicesCompact(xs []int64) []int64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Canonical renders the normalized spec in the grammar. Parsing the
// canonical form yields an identical spec (minus Statement, which is not
// part of the grammar) — the round-trip property FuzzParseHypothesis
// checks — so the canonical text is a stable cross-tool claim identifier.
func (s Spec) Canonical() string {
	var b strings.Builder
	b.WriteString("claim ")
	b.WriteString(s.ID)
	b.WriteString(":")
	for i, t := range s.Terms {
		if i > 0 {
			b.WriteString(" and")
		}
		b.WriteString(" ")
		b.WriteString(s.sideString(t.Left))
		b.WriteString(" ")
		b.WriteString(string(t.Op))
		if t.Op == OpApprox {
			b.WriteString(fmtFloat(t.Tol))
			b.WriteString("%")
		}
		b.WriteString(" ")
		b.WriteString(s.sideString(t.Right))
	}
	if s.Metric != "" {
		b.WriteString(" on ")
		b.WriteString(s.Metric)
	}
	if s.Trace != "" {
		b.WriteString(" trace ")
		b.WriteString(s.Trace)
	}
	if s.Require != 0 {
		fmt.Fprintf(&b, " require %d", s.Require)
	}
	if s.Tier != 0 {
		fmt.Fprintf(&b, " tier %d", s.Tier)
	}
	if len(s.Seeds) != 0 {
		b.WriteString(" seeds ")
		b.WriteString(fmtSeeds(s.Seeds))
	}
	return b.String()
}

func (s Spec) sideString(side Side) string {
	if side.IsConst {
		return fmtFloat(side.Const)
	}
	out := side.Config.String()
	if side.Metric != "" {
		out += "#" + side.Metric
	}
	if side.Factor != 0 {
		out += "*" + fmtFloat(side.Factor)
	}
	return out
}

// fmtFloat renders a float in the shortest form that parses back exactly.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// fmtSeeds renders sorted seeds as maximal consecutive runs: "42..51",
// "7", "1..3+9".
func fmtSeeds(seeds []int64) string {
	var b strings.Builder
	for i := 0; i < len(seeds); {
		j := i
		for j+1 < len(seeds) && seeds[j+1] == seeds[j]+1 {
			j++
		}
		if i > 0 {
			b.WriteString("+")
		}
		if j > i {
			fmt.Fprintf(&b, "%d..%d", seeds[i], seeds[j])
		} else {
			fmt.Fprintf(&b, "%d", seeds[i])
		}
		i = j + 1
	}
	return b.String()
}
