package metrics

import (
	"fmt"
	"strconv"
	"strings"

	"fairsched/internal/job"
)

// Metric keys: every scalar a Summary carries, addressable by a stable
// string key. The hypothesis harness states claims as comparisons between
// (policy × scenario) configurations "on" a metric key; this file is the
// single place those keys resolve, so a spec that names a metric the
// summary does not carry fails at validation time with the full key list,
// not at evaluation time with a zero.
//
// Width-category breakdowns (Figures 10/12/16/18) are addressed as
// "<base>_w<category>" with the category index 0..job.NumWidthCategories-1
// (category 4 is 17-32 nodes, 8-10 are the wide 129+ bands).

// scalarKeys maps each plain metric key to its accessor, in listing order.
var scalarKeys = []struct {
	key string
	get func(*Summary) float64
}{
	{"jobs", func(s *Summary) float64 { return float64(s.Jobs) }},
	{"avg_wait", func(s *Summary) float64 { return s.AvgWait }},
	{"avg_tat", func(s *Summary) float64 { return s.AvgTurnaround }},
	{"avg_bsld", func(s *Summary) float64 { return s.AvgBoundedSlowdown }},
	{"median_wait", func(s *Summary) float64 { return s.MedianWait }},
	{"median_tat", func(s *Summary) float64 { return s.MedianTurnaround }},
	{"median_bsld", func(s *Summary) float64 { return s.MedianBoundedSlowdown }},
	{"makespan", func(s *Summary) float64 { return float64(s.Makespan) }},
	{"util", func(s *Summary) float64 { return s.Utilization }},
	{"loc", func(s *Summary) float64 { return s.LossOfCapacity }},
	{"unfair_pct", func(s *Summary) float64 { return s.PercentUnfair }},
	{"unfair_load_pct", func(s *Summary) float64 { return s.PercentUnfairLoad }},
	{"avg_miss", func(s *Summary) float64 { return s.AvgMissTime }},
	{"unfair_jobs", func(s *Summary) float64 { return float64(s.UnfairJobs) }},
	{"fairness_jobs", func(s *Summary) float64 { return float64(s.FairnessJobs) }},
	{"total_miss", func(s *Summary) float64 { return s.TotalMissTime }},
}

// widthKeys maps each per-width-category base key to its accessor.
var widthKeys = []struct {
	base string
	get  func(*Summary, int) float64
}{
	{"jobs_w", func(s *Summary, w int) float64 { return float64(s.JobsByWidth[w]) }},
	{"avg_miss_w", func(s *Summary, w int) float64 { return s.AvgMissByWidth[w] }},
	{"avg_tat_w", func(s *Summary, w int) float64 { return s.AvgTATByWidth[w] }},
	{"avg_wait_w", func(s *Summary, w int) float64 { return s.AvgWaitByWidth[w] }},
}

// queueFields maps the per-queue field names addressable as
// "queue.<path>.<field>" (the path is a queue-tree path like "org/a"; the
// field is everything after the LAST dot, since paths use '/').
var queueFields = []struct {
	name string
	get  func(QueueSummary) float64
}{
	{"jobs", func(q QueueSummary) float64 { return float64(q.Jobs) }},
	{"users", func(q QueueSummary) float64 { return float64(q.Users) }},
	{"avg_wait", func(q QueueSummary) float64 { return q.AvgWait }},
	{"avg_tat", func(q QueueSummary) float64 { return q.AvgTurnaround }},
	{"slo_jobs", func(q QueueSummary) float64 { return float64(q.SLOJobs) }},
	{"slo_attained", func(q QueueSummary) float64 { return float64(q.SLOAttained) }},
	{"attain_pct", func(q QueueSummary) float64 { return q.AttainPct() }},
}

// splitQueueKey decomposes "queue.<path>.<field>" into (path, field
// accessor). The field is resolved statically — it must be one of
// queueFields — while the path is checked against the concrete Summary at
// resolution time only, because validation runs before any summary exists.
func splitQueueKey(key string) (path string, get func(QueueSummary) float64, err error) {
	rest, ok := strings.CutPrefix(key, "queue.")
	if !ok {
		return "", nil, nil
	}
	dot := strings.LastIndexByte(rest, '.')
	if dot <= 0 {
		return "", nil, fmt.Errorf("metrics: key %q: want queue.<path>.<field>", key)
	}
	path, field := rest[:dot], rest[dot+1:]
	for _, f := range queueFields {
		if f.name == field {
			return path, f.get, nil
		}
	}
	names := make([]string, len(queueFields))
	for i, f := range queueFields {
		names[i] = f.name
	}
	return "", nil, fmt.Errorf("metrics: key %q: unknown queue field %q (known: %s)",
		key, field, strings.Join(names, ", "))
}

// ValueByKey resolves one of the Summary's scalars by its metric key.
func (s *Summary) ValueByKey(key string) (float64, error) {
	if strings.HasPrefix(key, "queue.") {
		path, get, err := splitQueueKey(key)
		if err != nil {
			return 0, err
		}
		for _, q := range s.Queues {
			if q.Path == path {
				return get(q), nil
			}
		}
		return 0, fmt.Errorf("metrics: key %q: summary has no queue %q (the scenario must tag users into that queue)", key, path)
	}
	for _, k := range scalarKeys {
		if k.key == key {
			return k.get(s), nil
		}
	}
	for _, wk := range widthKeys {
		if rest, ok := strings.CutPrefix(key, wk.base); ok {
			w, err := strconv.Atoi(rest)
			if err == nil && w >= 0 && w < job.NumWidthCategories {
				return wk.get(s, w), nil
			}
			return 0, fmt.Errorf("metrics: key %q: width category %q out of range (want %s0..%s%d)",
				key, rest, wk.base, wk.base, job.NumWidthCategories-1)
		}
	}
	return 0, fmt.Errorf("metrics: unknown metric key %q (known: %s)", key, strings.Join(Keys(), ", "))
}

// ValidKey reports whether key resolves against a Summary. Queue keys are
// validated statically — a well-formed path with a known field is accepted
// here; whether the path exists in a concrete run is only knowable at
// evaluation time.
func ValidKey(key string) bool {
	if strings.HasPrefix(key, "queue.") {
		_, get, err := splitQueueKey(key)
		return err == nil && get != nil
	}
	var s Summary
	_, err := s.ValueByKey(key)
	return err == nil
}

// Keys lists every scalar metric key in listing order; width-category keys
// are shown as their "<base><0..N>" pattern.
func Keys() []string {
	out := make([]string, 0, len(scalarKeys)+len(widthKeys))
	for _, k := range scalarKeys {
		out = append(out, k.key)
	}
	for _, wk := range widthKeys {
		out = append(out, fmt.Sprintf("%s<0..%d>", wk.base, job.NumWidthCategories-1))
	}
	out = append(out, "queue.<path>.<field>")
	return out
}
