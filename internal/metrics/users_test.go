package metrics

import (
	"math"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

func userResult() *sim.Result {
	return &sim.Result{
		SystemSize: 10,
		Makespan:   300,
		Records: []*sim.Record{
			{Job: &job.Job{ID: 1, User: 1, Nodes: 5, Runtime: 100}, Submit: 0, Start: 0, Complete: 100, Finished: true},
			{Job: &job.Job{ID: 2, User: 1, Nodes: 5, Runtime: 100}, Submit: 0, Start: 100, Complete: 200, Finished: true},
			{Job: &job.Job{ID: 3, User: 2, Nodes: 2, Runtime: 50}, Submit: 10, Start: 10, Complete: 60, Finished: true},
		},
	}
}

func TestByUser(t *testing.T) {
	per := ByUser(userResult())
	if len(per) != 2 {
		t.Fatalf("got %d users", len(per))
	}
	u1 := per[0]
	if u1.User != 1 || u1.Jobs != 2 {
		t.Fatalf("user 1 summary wrong: %+v", u1)
	}
	if u1.ProcSeconds != 1000 {
		t.Errorf("user 1 proc-seconds = %v", u1.ProcSeconds)
	}
	if u1.AvgWait != 50 {
		t.Errorf("user 1 avg wait = %v", u1.AvgWait)
	}
	if u1.AvgTurnaround != 150 {
		t.Errorf("user 1 avg turnaround = %v", u1.AvgTurnaround)
	}
	u2 := per[1]
	if u2.User != 2 || u2.ProcSeconds != 100 || u2.AvgWait != 0 {
		t.Fatalf("user 2 summary wrong: %+v", u2)
	}
}

func TestTurnaroundStdDev(t *testing.T) {
	// Turnarounds: 100, 200, 50 -> mean 350/3; population stddev computed
	// directly for the check.
	xs := []float64{100, 200, 50}
	mean := (100.0 + 200 + 50) / 3
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	want := math.Sqrt(ss / 3)
	if got := TurnaroundStdDev(userResult()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
}

func TestJainIndexOfUserService(t *testing.T) {
	// User 1 received 1000 proc-sec, user 2 received 100: index =
	// (1100)^2 / (2 * (1000^2 + 100^2)) = 1210000/2020000.
	want := 1210000.0 / 2020000.0
	if got := JainIndexOfUserService(userResult()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("jain service index = %v, want %v", got, want)
	}
}

func TestJainIndexOfUserSlowdownEqualService(t *testing.T) {
	res := &sim.Result{
		Records: []*sim.Record{
			{Job: &job.Job{ID: 1, User: 1, Nodes: 1, Runtime: 100}, Submit: 0, Start: 0, Complete: 100, Finished: true},
			{Job: &job.Job{ID: 2, User: 2, Nodes: 1, Runtime: 100}, Submit: 0, Start: 0, Complete: 100, Finished: true},
		},
	}
	if got := JainIndexOfUserSlowdown(res); math.Abs(got-1) > 1e-9 {
		t.Fatalf("equal slowdowns should give index 1, got %v", got)
	}
}

func TestJainIndexOfUserSlowdownSkewed(t *testing.T) {
	res := &sim.Result{
		Records: []*sim.Record{
			// User 1: no wait (slowdown 1); user 2: waited 9x its runtime.
			{Job: &job.Job{ID: 1, User: 1, Nodes: 1, Runtime: 100}, Submit: 0, Start: 0, Complete: 100, Finished: true},
			{Job: &job.Job{ID: 2, User: 2, Nodes: 1, Runtime: 100}, Submit: 0, Start: 900, Complete: 1000, Finished: true},
		},
	}
	got := JainIndexOfUserSlowdown(res)
	if got >= 0.99 {
		t.Fatalf("skewed slowdowns should lower the index, got %v", got)
	}
}

func TestByUserEmpty(t *testing.T) {
	if got := ByUser(&sim.Result{}); len(got) != 0 {
		t.Fatalf("empty result produced %d users", len(got))
	}
}
