package metrics

import (
	"sort"

	"fairsched/internal/sim"
	"fairsched/internal/stats"
)

// Section 4 of the paper opens with the fairness measures of Vasupongayya
// and Chiang — the standard deviation of the turnaround time and Jain,
// Chiu and Hawe's fairness index — before arguing for FST-based metrics
// (bursty workloads make a high deviation desirable, not unfair). Both are
// implemented here, together with the per-user aggregation they are
// usually applied to, so the comparison the paper describes can be made on
// any run.

// UserSummary aggregates one user's jobs in a run.
type UserSummary struct {
	User          int
	Jobs          int
	ProcSeconds   float64 // nodes * realized runtime over all jobs
	AvgWait       float64
	AvgTurnaround float64
}

// ByUser aggregates a run per user, sorted by user id.
func ByUser(res *sim.Result) []UserSummary {
	acc := map[int]*UserSummary{}
	for _, r := range res.Records {
		u := acc[r.Job.User]
		if u == nil {
			u = &UserSummary{User: r.Job.User}
			acc[r.Job.User] = u
		}
		u.Jobs++
		u.ProcSeconds += float64(r.Job.Nodes) * float64(r.Complete-r.Start)
		u.AvgWait += float64(r.Wait())
		u.AvgTurnaround += float64(r.Turnaround())
	}
	out := make([]UserSummary, 0, len(acc))
	for _, u := range acc {
		if u.Jobs > 0 {
			u.AvgWait /= float64(u.Jobs)
			u.AvgTurnaround /= float64(u.Jobs)
		}
		out = append(out, *u)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].User < out[k].User })
	return out
}

// TurnaroundStdDev is the Vasupongayya/Chiang candidate metric: the
// population standard deviation of per-job turnaround times.
func TurnaroundStdDev(res *sim.Result) float64 {
	xs := make([]float64, 0, len(res.Records))
	for _, r := range res.Records {
		xs = append(xs, float64(r.Turnaround()))
	}
	return stats.StdDev(xs)
}

// JainIndexOfUserService is Jain, Chiu and Hawe's fairness index applied
// to the processor-seconds delivered per user: 1 when every user received
// the same service, approaching 1/users when one user hogged the machine.
// The paper's §4 notes such allocation-equality views conflict with
// fairshare's intent (users who ask for more should receive more), which
// is why the hybrid metric judges order, not quantity.
func JainIndexOfUserService(res *sim.Result) float64 {
	per := ByUser(res)
	xs := make([]float64, 0, len(per))
	for _, u := range per {
		xs = append(xs, u.ProcSeconds)
	}
	return stats.JainFairnessIndex(xs)
}

// JainIndexOfUserSlowdown applies the index to per-user average bounded
// slowdown — a service-quality (rather than quantity) equality view.
func JainIndexOfUserSlowdown(res *sim.Result) float64 {
	type agg struct {
		sum float64
		n   int
	}
	acc := map[int]*agg{}
	for _, r := range res.Records {
		run := float64(r.Complete - r.Start)
		if run < SlowdownBound {
			run = SlowdownBound
		}
		a := acc[r.Job.User]
		if a == nil {
			a = &agg{}
			acc[r.Job.User] = a
		}
		a.sum += (float64(r.Wait()) + run) / run
		a.n++
	}
	users := make([]int, 0, len(acc))
	for u := range acc {
		users = append(users, u)
	}
	sort.Ints(users)
	xs := make([]float64, 0, len(users))
	for _, u := range users {
		xs = append(xs, acc[u].sum/float64(acc[u].n))
	}
	return stats.JainFairnessIndex(xs)
}
