package metrics

import (
	"strings"
	"testing"

	"fairsched/internal/job"
)

func TestValueByKeyScalars(t *testing.T) {
	s := &Summary{
		Jobs: 7, AvgWait: 1.5, AvgTurnaround: 2.5, AvgBoundedSlowdown: 3.5,
		MedianWait: 4.5, MedianTurnaround: 5.5, Makespan: 600, Utilization: 0.75,
		LossOfCapacity: 0.25, PercentUnfair: 6.5, PercentUnfairLoad: 7.5,
		AvgMissTime: 8.5, UnfairJobs: 2, FairnessJobs: 6, TotalMissTime: 9.5,
	}
	cases := map[string]float64{
		"jobs": 7, "avg_wait": 1.5, "avg_tat": 2.5, "avg_bsld": 3.5,
		"median_wait": 4.5, "median_tat": 5.5, "makespan": 600, "util": 0.75,
		"loc": 0.25, "unfair_pct": 6.5, "unfair_load_pct": 7.5,
		"avg_miss": 8.5, "unfair_jobs": 2, "fairness_jobs": 6, "total_miss": 9.5,
	}
	for key, want := range cases {
		got, err := s.ValueByKey(key)
		if err != nil {
			t.Fatalf("ValueByKey(%q): %v", key, err)
		}
		if got != want {
			t.Errorf("ValueByKey(%q) = %v, want %v", key, got, want)
		}
	}
}

func TestValueByKeyWidthCategories(t *testing.T) {
	s := &Summary{}
	s.JobsByWidth[4] = 11
	s.AvgMissByWidth[8] = 100
	s.AvgTATByWidth[9] = 200
	s.AvgWaitByWidth[10] = 300
	cases := map[string]float64{
		"jobs_w4": 11, "avg_miss_w8": 100, "avg_tat_w9": 200, "avg_wait_w10": 300,
		"avg_miss_w0": 0,
	}
	for key, want := range cases {
		got, err := s.ValueByKey(key)
		if err != nil {
			t.Fatalf("ValueByKey(%q): %v", key, err)
		}
		if got != want {
			t.Errorf("ValueByKey(%q) = %v, want %v", key, got, want)
		}
	}
}

func TestValueByKeyErrors(t *testing.T) {
	s := &Summary{}
	for _, key := range []string{"", "bogus", "avg_miss_w11", "avg_miss_w-1", "avg_miss_wx", "jobs_w99"} {
		if _, err := s.ValueByKey(key); err == nil {
			t.Errorf("ValueByKey(%q) did not fail", key)
		}
	}
	if ValidKey("bogus") || !ValidKey("unfair_pct") || !ValidKey("avg_miss_w8") {
		t.Error("ValidKey misclassifies")
	}
}

// Every key Keys() lists must resolve (width patterns expanded over the
// category range), so -list output and the parser's accepted set agree.
func TestKeysAllResolve(t *testing.T) {
	s := &Summary{Queues: []QueueSummary{{Path: "org/a"}}}
	for _, key := range Keys() {
		if key == "queue.<path>.<field>" {
			for _, f := range queueFields {
				k := "queue.org/a." + f.name
				if _, err := s.ValueByKey(k); err != nil {
					t.Errorf("listed queue key %q does not resolve: %v", k, err)
				}
			}
			continue
		}
		if i := strings.Index(key, "<"); i >= 0 {
			base := key[:i]
			for w := 0; w < job.NumWidthCategories; w++ {
				k := base + itoa(w)
				if _, err := s.ValueByKey(k); err != nil {
					t.Errorf("listed width key %q does not resolve: %v", k, err)
				}
			}
			continue
		}
		if _, err := s.ValueByKey(key); err != nil {
			t.Errorf("listed key %q does not resolve: %v", key, err)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}
