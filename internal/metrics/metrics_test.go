package metrics

import (
	"math"
	"testing"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCollectorLossOfCapacity(t *testing.T) {
	c := NewCollector(10)
	// 100s with 6 nodes busy, 8 nodes demanded by the queue:
	// lost = min(10-6, 8) = 4 -> 400 proc-sec.
	c.Interval(0, 100, 6, 8)
	if got := c.LostProcSeconds(); !almost(got, 400) {
		t.Fatalf("lost = %v, want 400", got)
	}
	// Queue demand smaller than idle: lost = queued.
	c.Interval(100, 200, 6, 2)
	if got := c.LostProcSeconds(); !almost(got, 600) {
		t.Fatalf("lost = %v, want 600", got)
	}
	// Busy system, deep queue: nothing lost.
	c.Interval(200, 300, 10, 50)
	if got := c.LostProcSeconds(); !almost(got, 600) {
		t.Fatalf("lost = %v, want unchanged 600", got)
	}
	// Idle system, empty queue: nothing lost.
	c.Interval(300, 400, 0, 0)
	if got := c.LostProcSeconds(); !almost(got, 600) {
		t.Fatalf("lost = %v, want unchanged 600", got)
	}
	if got := c.BusyProcSeconds(); !almost(got, 600+600+1000) {
		t.Fatalf("busy = %v", got)
	}
}

func TestCollectorWeeklySplit(t *testing.T) {
	c := NewCollector(10)
	// An interval spanning a week boundary splits its executed work.
	start := int64(WeekSeconds - 100)
	c.Interval(start, start+300, 5, 0)
	weeks := c.WeeklyExecuted()
	if len(weeks) < 2 {
		t.Fatalf("weeks = %d", len(weeks))
	}
	if !almost(weeks[0], 500) { // 100s * 5 nodes
		t.Fatalf("week 0 executed = %v, want 500", weeks[0])
	}
	if !almost(weeks[1], 1000) { // 200s * 5 nodes
		t.Fatalf("week 1 executed = %v, want 1000", weeks[1])
	}
}

func TestCollectorWeeklySubmitted(t *testing.T) {
	c := NewCollector(10)
	env := &fakeEnv{}
	c.JobArrived(env, &job.Job{ID: 1, Submit: 10, Nodes: 4, Runtime: 100}, nil)
	c.JobArrived(env, &job.Job{ID: 2, Submit: WeekSeconds + 5, Nodes: 2, Runtime: 50}, nil)
	sub := c.WeeklySubmitted()
	if !almost(sub[0], 400) || !almost(sub[1], 100) {
		t.Fatalf("weekly submitted = %v", sub)
	}
}

type fakeEnv struct{ now int64 }

func (f *fakeEnv) Now() int64                    { return f.now }
func (f *fakeEnv) SystemSize() int               { return 10 }
func (f *fakeEnv) FreeNodes() int                { return 10 }
func (f *fakeEnv) Running() []sim.RunningJob     { return nil }
func (f *fakeEnv) Fairshare() *fairshare.Tracker { return nil }
func (f *fakeEnv) Availability() *profile.Profile {
	return profile.New(f.now, 10, 10)
}
func (f *fakeEnv) Start(*job.Job) error { return nil }

var _ sim.Env = (*fakeEnv)(nil)

func TestSummarizeUserMetrics(t *testing.T) {
	res := &sim.Result{
		Policy:     "test",
		SystemSize: 10,
		Makespan:   200,
		Records: []*sim.Record{
			{Job: &job.Job{ID: 1, Nodes: 5, Runtime: 100}, Submit: 0, Start: 0, Complete: 100, Finished: true},
			{Job: &job.Job{ID: 2, Nodes: 5, Runtime: 100}, Submit: 0, Start: 100, Complete: 200, Finished: true},
		},
	}
	s := Summarize(res, nil, nil)
	if !almost(s.AvgWait, 50) {
		t.Errorf("avg wait = %v", s.AvgWait)
	}
	if !almost(s.AvgTurnaround, 150) {
		t.Errorf("avg turnaround = %v", s.AvgTurnaround)
	}
	if !almost(s.MedianTurnaround, 150) {
		t.Errorf("median turnaround = %v", s.MedianTurnaround)
	}
	// Slowdown: job1 = (0+100)/100 = 1; job2 = (100+100)/100 = 2.
	if !almost(s.AvgBoundedSlowdown, 1.5) {
		t.Errorf("slowdown = %v", s.AvgBoundedSlowdown)
	}
	// Utilization: 1000 proc-sec over 200s * 10 nodes = 0.5 (Equation 2).
	if !almost(s.Utilization, 0.5) {
		t.Errorf("utilization = %v", s.Utilization)
	}
	if s.JobsByWidth[3] != 2 {
		t.Errorf("width category count = %v", s.JobsByWidth)
	}
	if !almost(s.AvgTATByWidth[3], 150) {
		t.Errorf("width TAT = %v", s.AvgTATByWidth[3])
	}
}

func TestSummarizeBoundedSlowdownFloor(t *testing.T) {
	res := &sim.Result{
		SystemSize: 10, Makespan: 100,
		Records: []*sim.Record{
			// 1s job waiting 10s: bounded slowdown uses the 10s floor:
			// (10+10)/10 = 2, not (10+1)/1 = 11.
			{Job: &job.Job{ID: 1, Nodes: 1, Runtime: 1}, Submit: 0, Start: 10, Complete: 11, Finished: true},
		},
	}
	s := Summarize(res, nil, nil)
	if !almost(s.AvgBoundedSlowdown, 2) {
		t.Fatalf("bounded slowdown = %v, want 2", s.AvgBoundedSlowdown)
	}
}

func TestSummarizeWithFSTAndCollector(t *testing.T) {
	col := NewCollector(10)
	col.Interval(0, 100, 5, 10) // lost 500
	res := &sim.Result{
		SystemSize: 10, Makespan: 100,
		Records: []*sim.Record{
			{Job: &job.Job{ID: 1, Nodes: 5, Runtime: 100}, Submit: 0, Start: 50, Complete: 150, Finished: true},
		},
	}
	fst := map[job.ID]int64{1: 10}
	s := Summarize(res, fst, col)
	if !almost(s.LossOfCapacity, 0.5) {
		t.Errorf("LOC = %v, want 0.5", s.LossOfCapacity)
	}
	if s.UnfairJobs != 1 || !almost(s.AvgMissTime, 40) {
		t.Errorf("unfair=%d miss=%v", s.UnfairJobs, s.AvgMissTime)
	}
	if s.FairnessJobs != 1 {
		t.Errorf("fairness jobs = %d", s.FairnessJobs)
	}
}

func TestOfferedLoadCarriesBacklog(t *testing.T) {
	submitted := []float64{1.5, 0.2, 0.1}
	executed := []float64{0.9, 0.6, 0.3}
	got := offeredLoad(submitted, executed)
	// Week 0: no backlog + 1.5 = 1.5; backlog becomes 0.6.
	// Week 1: 0.6 + 0.2 = 0.8; backlog becomes 0.2.
	// Week 2: 0.2 + 0.1 = 0.3.
	want := []float64{1.5, 0.8, 0.3}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("offered[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOfferedLoadClampsNegativeBacklog(t *testing.T) {
	// Executing more than submitted (backlog from nowhere) must not go
	// negative.
	got := offeredLoad([]float64{0.5, 0.5}, []float64{0.9, 0.1})
	if !almost(got[1], 0.5) {
		t.Fatalf("offered[1] = %v, want 0.5", got[1])
	}
}

func TestFractionOfCapacity(t *testing.T) {
	got := fractionOfCapacity([]float64{float64(10 * WeekSeconds)}, 10)
	if !almost(got[0], 1) {
		t.Fatalf("fraction = %v, want 1", got[0])
	}
}

func TestMedianHelper(t *testing.T) {
	if !almost(median([]float64{3, 1, 2}), 2) {
		t.Error("odd median")
	}
	if !almost(median([]float64{4, 1, 2, 3}), 2.5) {
		t.Error("even median")
	}
	if median(nil) != 0 {
		t.Error("empty median")
	}
}

func TestCollectorEmptySummary(t *testing.T) {
	res := &sim.Result{SystemSize: 10}
	s := Summarize(res, nil, nil)
	if s.Jobs != 0 || s.AvgWait != 0 {
		t.Fatal("empty result should produce zero summary")
	}
}
