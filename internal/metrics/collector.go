// Package metrics computes the paper's standard user and system metrics
// (§3.2): wait time, turnaround time (Equation 1), bounded slowdown,
// utilization (Equation 2), makespan (Equation 3) and loss of capacity
// (Equation 4), plus the weekly offered-load/utilization series of Figure 3
// and the per-width-category breakdowns of Figures 10/12/16/18.
package metrics

import (
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// WeekSeconds is the bin width of the weekly load series.
const WeekSeconds = 7 * 24 * 3600

// Collector is a simulation observer that integrates the time-dependent
// quantities a post-run summary cannot reconstruct from job records alone:
// the loss-of-capacity numerator and the weekly submitted/executed
// processor-second series.
type Collector struct {
	sim.BaseObserver
	systemSize int

	// lostProcSec integrates min(queued demand, idle nodes) dt — the
	// numerator of Equation 4.
	lostProcSec float64
	// busyProcSec integrates nodes-in-use dt.
	busyProcSec float64
	// weeklySubmitted[w] sums Nodes*Runtime of jobs submitted in week w.
	weeklySubmitted []float64
	// weeklyExecuted[w] integrates nodes-in-use dt within week w.
	weeklyExecuted []float64
	// span of observed simulated time.
	firstTime int64
	lastTime  int64
	sawTime   bool
}

// NewCollector creates a collector for a system of the given size.
func NewCollector(systemSize int) *Collector {
	return &Collector{systemSize: systemSize}
}

// SystemSize returns the configured node count.
func (c *Collector) SystemSize() int { return c.systemSize }

func (c *Collector) week(t int64) int {
	if t < 0 {
		return 0
	}
	return int(t / WeekSeconds)
}

func (c *Collector) growWeeks(w int) {
	for len(c.weeklySubmitted) <= w {
		c.weeklySubmitted = append(c.weeklySubmitted, 0)
	}
	for len(c.weeklyExecuted) <= w {
		c.weeklyExecuted = append(c.weeklyExecuted, 0)
	}
}

// JobArrived implements sim.Observer.
func (c *Collector) JobArrived(env sim.Env, j *job.Job, _ []*job.Job) {
	w := c.week(j.Submit)
	c.growWeeks(w)
	c.weeklySubmitted[w] += float64(j.ProcSeconds())
	c.observe(env.Now())
}

// Interval implements sim.Observer.
func (c *Collector) Interval(from, to int64, usedNodes, queuedNodes int) {
	c.observe(from)
	c.observe(to)
	dt := to - from
	if dt <= 0 {
		return
	}
	c.busyProcSec += float64(usedNodes) * float64(dt)
	idle := c.systemSize - usedNodes
	lost := queuedNodes
	if idle < lost {
		lost = idle
	}
	if lost > 0 {
		c.lostProcSec += float64(lost) * float64(dt)
	}
	// Split the executed processor-seconds across week bins.
	t := from
	for t < to {
		w := c.week(t)
		end := int64(w+1) * WeekSeconds
		if end > to {
			end = to
		}
		c.growWeeks(w)
		c.weeklyExecuted[w] += float64(usedNodes) * float64(end-t)
		t = end
	}
}

func (c *Collector) observe(t int64) {
	if !c.sawTime {
		c.firstTime, c.lastTime, c.sawTime = t, t, true
		return
	}
	if t < c.firstTime {
		c.firstTime = t
	}
	if t > c.lastTime {
		c.lastTime = t
	}
}

// Merge folds another collector's integrals into c. Partitioned runs give
// each partition its own collector (sized to the partition, so Equation 4's
// min(queued, idle) sees only nodes the queued jobs could actually use) and
// merge them into a fresh collector sized to the whole machine before
// summarizing. Time spans and weekly bins combine exactly; the merge is
// commutative up to float addition order, so callers must merge in a fixed
// (declaration) order to keep reports byte-identical.
func (c *Collector) Merge(o *Collector) {
	c.lostProcSec += o.lostProcSec
	c.busyProcSec += o.busyProcSec
	if n := len(o.weeklySubmitted); n > 0 {
		c.growWeeks(n - 1)
	}
	for w, v := range o.weeklySubmitted {
		c.weeklySubmitted[w] += v
	}
	for w, v := range o.weeklyExecuted {
		c.weeklyExecuted[w] += v
	}
	if o.sawTime {
		c.observe(o.firstTime)
		c.observe(o.lastTime)
	}
}

// LostProcSeconds returns the Equation 4 numerator.
func (c *Collector) LostProcSeconds() float64 { return c.lostProcSec }

// BusyProcSeconds returns the integral of nodes-in-use over time.
func (c *Collector) BusyProcSeconds() float64 { return c.busyProcSec }

// Weeks returns the number of weekly bins observed.
func (c *Collector) Weeks() int { return len(c.weeklySubmitted) }

// WeeklySubmitted returns processor-seconds submitted per week.
func (c *Collector) WeeklySubmitted() []float64 { return c.weeklySubmitted }

// WeeklyExecuted returns processor-seconds executed per week.
func (c *Collector) WeeklyExecuted() []float64 { return c.weeklyExecuted }
