package metrics

import (
	"sort"

	"fairsched/internal/fairness"
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// SlowdownBound is the runtime floor of the bounded-slowdown metric (the
// conventional 10 seconds).
const SlowdownBound = 10

// Summary is the complete evaluation of one policy run: every number that
// appears in the paper's Figures 8-19 plus the standard companions.
type Summary struct {
	Policy     string
	SystemSize int
	Jobs       int

	// User metrics (§3.2.1).
	AvgWait            float64
	AvgTurnaround      float64 // Equation 1
	AvgBoundedSlowdown float64
	MedianWait         float64
	MedianTurnaround   float64
	// MedianBoundedSlowdown is the robust central tendency the cross-trace
	// robustness ranking aggregates on: unlike the mean it is insensitive to
	// the handful of pathological slowdowns every real trace contains.
	MedianBoundedSlowdown float64

	// System metrics (§3.2.2).
	Makespan       int64
	Utilization    float64 // Equation 2
	LossOfCapacity float64 // Equation 4

	// Fairness (§4.1, Equation 5). FairnessJobs counts the logical jobs
	// measured (checkpoint chains count once); PercentUnfairLoad is the
	// §4 processor-second-weighted variant of PercentUnfair.
	PercentUnfair     float64
	PercentUnfairLoad float64
	AvgMissTime       float64
	UnfairJobs        int
	FairnessJobs      int
	TotalMissTime     float64

	// Per-width-category breakdowns (Figures 10/12/16/18).
	JobsByWidth    [job.NumWidthCategories]int
	AvgMissByWidth [job.NumWidthCategories]float64
	AvgTATByWidth  [job.NumWidthCategories]float64
	AvgWaitByWidth [job.NumWidthCategories]float64

	// Weekly series (Figure 3), as fractions of weekly capacity.
	WeeklySubmitted   []float64 // work submitted each week
	WeeklyUtilization []float64 // work executed each week
	WeeklyOfferedLoad []float64 // backlog-inclusive queued workload

	// Queues holds one row per declared queue-tree leaf, in queue-path
	// order; empty for flat runs with no queue tagging. Partitions holds
	// one row per partition when the run spans more than one. Both are
	// population extras: they never feed back into the machine-wide scalars
	// above, so a single-partition single-queue topology summarizes
	// byte-identically to the flat path.
	Queues     []QueueSummary
	Partitions []PartitionSummary
}

// QueueSummary is one queue-tree leaf's share of the run: the jobs whose
// users route to the queue, with their wait/turnaround averages and (when
// the cell carries an SLO assignment) the queue's attainment count.
type QueueSummary struct {
	Path          string
	Jobs          int
	Users         int
	AvgWait       float64
	AvgTurnaround float64
	SLOJobs       int // SLO-judged jobs of the queue's users (0 = no assignment)
	SLOAttained   int
}

// AttainPct returns the queue's SLO attainment percentage (0 when no jobs
// were judged).
func (q QueueSummary) AttainPct() float64 {
	if q.SLOJobs == 0 {
		return 0
	}
	return 100 * float64(q.SLOAttained) / float64(q.SLOJobs)
}

// PartitionSummary is one partition's share of a multi-partition run.
// Utilization is the partition-local Equation 2 over the merged run's
// makespan, so the rows of one report share a time denominator.
type PartitionSummary struct {
	Name          string
	Nodes         int
	Jobs          int
	AvgWait       float64
	AvgTurnaround float64
	Utilization   float64
}

// Summarize joins the run result, the FST table and the collector
// integrals into a Summary.
func Summarize(res *sim.Result, fst map[job.ID]int64, col *Collector) *Summary {
	s := &Summary{
		Policy:     res.Policy,
		SystemSize: res.SystemSize,
		Jobs:       len(res.Records),
		Makespan:   res.Makespan,
	}
	var sumWait, sumTAT, sumSlow float64
	var waits, tats, slows []float64
	var tatByWidth, waitByWidth [job.NumWidthCategories]float64
	var usedProcSec float64
	for _, r := range res.Records {
		w := job.WidthCategory(r.Job.Nodes)
		s.JobsByWidth[w]++
		wait := float64(r.Wait())
		tat := float64(r.Turnaround())
		sumWait += wait
		sumTAT += tat
		waits = append(waits, wait)
		tats = append(tats, tat)
		waitByWidth[w] += wait
		tatByWidth[w] += tat
		run := float64(r.Complete - r.Start)
		if run < SlowdownBound {
			run = SlowdownBound
		}
		slow := (wait + run) / run
		sumSlow += slow
		slows = append(slows, slow)
		usedProcSec += float64(r.Job.Nodes) * float64(r.Complete-r.Start)
	}
	if s.Jobs > 0 {
		n := float64(s.Jobs)
		s.AvgWait = sumWait / n
		s.AvgTurnaround = sumTAT / n
		s.AvgBoundedSlowdown = sumSlow / n
		s.MedianWait = median(waits)
		s.MedianTurnaround = median(tats)
		s.MedianBoundedSlowdown = median(slows)
	}
	for w := 0; w < job.NumWidthCategories; w++ {
		if s.JobsByWidth[w] > 0 {
			n := float64(s.JobsByWidth[w])
			s.AvgTATByWidth[w] = tatByWidth[w] / n
			s.AvgWaitByWidth[w] = waitByWidth[w] / n
		}
	}
	if res.Makespan > 0 {
		denom := float64(res.Makespan) * float64(res.SystemSize)
		s.Utilization = usedProcSec / denom
		if col != nil {
			s.LossOfCapacity = col.LostProcSeconds() / denom
		}
	}
	if fst != nil {
		u := fairness.Measure(res.Records, fst)
		s.PercentUnfair = u.PercentUnfair()
		s.PercentUnfairLoad = u.PercentUnfairLoad()
		s.AvgMissTime = u.AvgMissTime()
		s.UnfairJobs = u.UnfairJobs
		s.FairnessJobs = u.Jobs
		s.TotalMissTime = u.TotalMiss
		s.AvgMissByWidth = u.AvgMissTimeByWidth()
	}
	if col != nil {
		s.WeeklySubmitted = fractionOfCapacity(col.WeeklySubmitted(), res.SystemSize)
		s.WeeklyUtilization = fractionOfCapacity(col.WeeklyExecuted(), res.SystemSize)
		s.WeeklyOfferedLoad = offeredLoad(s.WeeklySubmitted, s.WeeklyUtilization)
	}
	return s
}

func fractionOfCapacity(procSec []float64, systemSize int) []float64 {
	cap := float64(systemSize) * WeekSeconds
	out := make([]float64, len(procSec))
	for i, v := range procSec {
		out[i] = v / cap
	}
	return out
}

// offeredLoad converts the submitted series into Figure 3's "amount of
// queued workload over time": the work carried over from previous weeks
// (submitted but not yet executed) plus the week's own submissions, as a
// fraction of weekly capacity.
func offeredLoad(submitted, executed []float64) []float64 {
	out := make([]float64, len(submitted))
	backlog := 0.0
	for i := range submitted {
		out[i] = backlog + submitted[i]
		exec := 0.0
		if i < len(executed) {
			exec = executed[i]
		}
		backlog += submitted[i] - exec
		if backlog < 0 {
			backlog = 0
		}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
