package sim

import (
	"fmt"
	"sort"

	"fairsched/internal/eventq"
	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/userdex"
)

// Event kinds on the future event list.
const (
	evArrival = iota
	evCompletion
	evWake
	evWCLCheck
	evRequeue
)

// Same-instant event priorities: completions release nodes and must be
// observed by every other event at that time, wall-clock-limit checks come
// next, then arrivals, then preemption requeues (a checkpointed remainder
// re-enters the queue after the regular submissions of the same instant),
// then wake-ups. Requeue events exist only in preemptable runs, so the
// non-preemptive event order is untouched.
func eventPrio(kind int) int {
	switch kind {
	case evCompletion:
		return 0
	case evWCLCheck:
		return 1
	case evArrival:
		return 2
	case evRequeue:
		return 3
	default:
		return 4
	}
}

// evPayload is the typed event payload: the job for arrivals, completions
// and wall-clock-limit checks; the wake version for wake events. A concrete
// struct instead of interface{} keeps the event list allocation-free —
// boxing the growing wake version into an interface heap-allocates on every
// reschedule, and every pop would pay a type assertion.
type evPayload struct {
	job  *job.Job
	wake int64
}

// Simulator executes one policy over one workload. Create with New, run with
// Run; a Simulator is single-use.
type Simulator struct {
	cfg       Config
	policy    Policy
	observers []Observer

	q       eventq.Queue[evPayload]
	now     int64
	used    int
	running []RunningJob // start order (then id)
	fs      *fairshare.Tracker
	// records indexes every record by job id — a dense slice for the
	// common dense id space, a map for sparse ones (see recordIndex).
	// sparseRecords forces the map layout (differential tests).
	records       recordIndex
	sparseRecords bool
	order         []*Record // submit order as processed
	nextID        job.ID    // id allocator for split segments
	// splitOriginals maps an original job id to the original job while its
	// segment chain is in flight.
	splitOriginals map[job.ID]*job.Job
	// preempted marks jobs checkpointed by Preempt whose originally
	// scheduled completion (and wall-clock-limit check) events are still on
	// the list; those events are stale and must be dropped, exactly like a
	// killed job's full-runtime completion under KillWhenNeeded.
	preempted map[job.ID]bool
	wakeVer   int64 // current wake event version; older wakes are stale
	// pendingWake/pendingWakeOK describe the currently valid wake event on
	// the list, so rescheduleWake can skip re-pushing an identical wake
	// (the dominant case: the next reservation or promotion instant rarely
	// moves between consecutive events).
	pendingWake   int64
	pendingWakeOK bool
	pendingReal   int // pending arrival/completion/kill-check events
	events        int64
	inEvent       bool // guards Env.Start against use outside policy callbacks

	// Reused per-event scratch buffers (hot path: one advanceTo per distinct
	// event time, one completion batch per completion instant).
	batchBuf []*job.Job

	// userNodes aggregates the running jobs' node counts per user (each
	// user at most once), maintained incrementally by Start/release so
	// advanceTo hands fairshare accrual a ready aggregation instead of
	// rebuilding one per event. userIdx locates a user's entry; it rides
	// the paged user index so population-scale id spaces (10^5..10^6
	// users) pay two array indexes, not a hash probe, per start/release.
	userNodes []fairshare.Usage
	userIdx   userdex.Map[int32]
	// queuedNodes tracks the total nodes requested by queued jobs
	// (arrivals minus starts), so advanceTo does not walk the policy's
	// queue at every event.
	queuedNodes int

	// avail is the shared availability profile handed out by Availability():
	// rebuilt lazily (into the same backing array) whenever the running set
	// or the clock has changed since it was last built.
	avail      profile.Profile
	availDirty bool
	availInit  bool
}

// New creates a simulator for the given configuration and policy.
func New(cfg Config, pol Policy, observers ...Observer) *Simulator {
	return &Simulator{
		cfg:       cfg.withDefaults(),
		policy:    pol,
		observers: observers,
		// records is allocated in Run, sized to the workload.
	}
}

// Now implements Env.
func (s *Simulator) Now() int64 { return s.now }

// SystemSize implements Env.
func (s *Simulator) SystemSize() int { return s.cfg.SystemSize }

// FreeNodes implements Env.
func (s *Simulator) FreeNodes() int { return s.cfg.SystemSize - s.used }

// Running implements Env.
func (s *Simulator) Running() []RunningJob { return s.running }

// Fairshare implements Env.
func (s *Simulator) Fairshare() *fairshare.Tracker { return s.fs }

// Availability implements Env: the free-capacity profile implied by the
// running jobs, built at most once per scheduling pass. Every policy
// component in that pass (reservation search, backfill check, starvation
// reservation) reads the same profile instead of re-deriving release times
// from the running set; Start and the advancing clock invalidate it.
func (s *Simulator) Availability() *profile.Profile {
	if !s.availInit || s.availDirty {
		s.avail.Reset(s.now, s.cfg.SystemSize, s.cfg.SystemSize)
		for _, r := range s.running {
			if err := s.avail.Occupy(s.now, r.EstimatedCompletion(s.now), r.Job.Nodes); err != nil {
				// Running jobs always fit: they were started within capacity.
				panic(fmt.Sprintf("sim: availability occupancy: %v", err))
			}
		}
		s.availInit = true
		s.availDirty = false
	}
	return &s.avail
}

// Start implements Env: a policy launches a queued job now.
func (s *Simulator) Start(j *job.Job) error {
	if !s.inEvent {
		return fmt.Errorf("sim: Start(%d) outside a scheduling event", j.ID)
	}
	rec := s.records.get(j.ID)
	if rec == nil {
		return fmt.Errorf("sim: Start(%d): job never arrived", j.ID)
	}
	if rec.Started {
		return fmt.Errorf("sim: Start(%d): already started", j.ID)
	}
	if j.Nodes > s.FreeNodes() {
		return fmt.Errorf("sim: Start(%d): needs %d nodes, only %d free", j.ID, j.Nodes, s.FreeNodes())
	}
	rec.Started = true
	rec.Start = s.now
	s.used += j.Nodes
	s.queuedNodes -= j.Nodes
	s.running = append(s.running, RunningJob{Job: j, Start: s.now})
	s.addUserNodes(j.User, j.Nodes)
	s.availDirty = true
	runtime := j.Runtime
	if s.cfg.Kill == KillAlways && j.Estimate < runtime {
		runtime = j.Estimate
		rec.Killed = true
	}
	s.pushJob(s.now+runtime, evCompletion, j)
	s.pendingReal++
	if s.cfg.Kill == KillWhenNeeded && j.Estimate < j.Runtime {
		s.pushJob(s.now+j.Estimate, evWCLCheck, j)
		s.pendingReal++
	}
	for _, o := range s.observers {
		o.JobStarted(s, j)
	}
	return nil
}

// pushJob enqueues a job-carrying event of the given kind.
func (s *Simulator) pushJob(t int64, kind int, j *job.Job) {
	s.q.Push(eventq.Event[evPayload]{Time: t, Prio: eventPrio(kind), Kind: kind, Payload: evPayload{job: j}})
}

// runningIndex locates a job in the running set, -1 if not running.
func (s *Simulator) runningIndex(id job.ID) int {
	for i, r := range s.running {
		if r.Job.ID == id {
			return i
		}
	}
	return -1
}

// scheduledEnd returns when the running job will actually leave the
// machine: start + runtime, truncated to the estimate under KillAlways
// (Start scheduled the truncated completion directly).
func (s *Simulator) scheduledEnd(r RunningJob) int64 {
	runtime := r.Job.Runtime
	if s.cfg.Kill == KillAlways && r.Job.Estimate < runtime {
		runtime = r.Job.Estimate
	}
	return r.Start + runtime
}

// CanPreempt implements Preempter: j is preemptable when the run allows
// preemption, j is running with at least one second of realized service
// (a checkpoint needs something to save) and at least one second of
// service left before its scheduled end (checkpointing a job in its final
// second is pointless — the remainder would be empty).
func (s *Simulator) CanPreempt(j *job.Job) bool {
	if !s.cfg.Preemptable || !s.inEvent {
		return false
	}
	idx := s.runningIndex(j.ID)
	if idx < 0 {
		return false
	}
	r := s.running[idx]
	return s.now-r.Start >= 1 && s.scheduledEnd(r)-s.now >= 1
}

// Preempt implements Preempter: checkpoint a running job at the current
// instant and resubmit its remainder as a chained segment. The job's record
// is finalized as preempted (its realized service so far), its chain
// metadata is extended (ChainRuntime set so fairness and chained-SLO
// accounting price the chain as one logical job), observers see a regular
// JobCompleted, and the remainder — a fresh job carrying the next segment
// index, the remaining runtime and the remaining estimate budget — arrives
// via a same-instant requeue event, after the instant's regular arrivals.
// The checkpoint cost model is pure requeue delay: the remainder pays queue
// wait (and the chained-SLO judgment prices it) but no explicit
// checkpoint/restore I/O time is added (DESIGN.md §16).
//
// Only policies drive Preempt, from inside a scheduling callback, and only
// when Config.Preemptable is set (the simulator then runs on private clones
// of the workload jobs, so the chain-metadata mutation never leaks into
// job slices shared across concurrent runs).
func (s *Simulator) Preempt(j *job.Job) error {
	if !s.cfg.Preemptable {
		return fmt.Errorf("sim: Preempt(%d): run is not preemptable (Config.Preemptable unset)", j.ID)
	}
	if !s.inEvent {
		return fmt.Errorf("sim: Preempt(%d) outside a scheduling event", j.ID)
	}
	idx := s.runningIndex(j.ID)
	if idx < 0 {
		return fmt.Errorf("sim: Preempt(%d): not running", j.ID)
	}
	r := s.running[idx]
	ran := s.now - r.Start
	left := s.scheduledEnd(r) - s.now
	if ran < 1 || left < 1 {
		return fmt.Errorf("sim: Preempt(%d): ran %ds, %ds left — not preemptable", j.ID, ran, left)
	}
	// Extend the chain metadata before observers fire: EffectiveRuntime
	// (and with it the hybrid-FST availability key start+EffectiveRuntime)
	// must read the same value JobStarted saw, so ChainRuntime is set to
	// the full runtime only when the job was not already a chain segment.
	if j.ChainRuntime == 0 {
		j.ChainRuntime = j.Runtime
	}
	if j.Parent == 0 {
		j.Parent = j.ID
		j.Segment = 1
	}
	j.Segments = j.Segment + 1
	rem := &job.Job{
		ID:           s.allocID(),
		User:         j.User,
		Group:        j.Group,
		Submit:       s.now,
		Runtime:      j.Runtime - ran,
		Estimate:     j.Estimate - ran,
		Nodes:        j.Nodes,
		Parent:       j.Parent,
		Segment:      j.Segment + 1,
		Segments:     j.Segment + 1,
		ChainRuntime: j.ChainRuntime - ran,
	}
	if rem.Estimate < 1 {
		rem.Estimate = 1
	}
	// Release the nodes and finalize the record at the checkpoint instant.
	copy(s.running[idx:], s.running[idx+1:])
	s.running[len(s.running)-1] = RunningJob{}
	s.running = s.running[:len(s.running)-1]
	s.used -= j.Nodes
	s.addUserNodes(j.User, -j.Nodes)
	s.availDirty = true
	rec := s.records.get(j.ID)
	rec.Complete = s.now
	rec.Finished = true
	rec.Preempted = true
	// KillAlways marks the record killed at Start, anticipating the
	// truncated completion; a preemption before that instant supersedes the
	// kill (the remainder re-enters with the remaining estimate budget, and
	// its own record carries the truncation if it still applies).
	rec.Killed = false
	if s.preempted == nil {
		s.preempted = make(map[job.ID]bool)
	}
	s.preempted[j.ID] = true // the original completion/WCL events are now stale
	for _, o := range s.observers {
		o.JobCompleted(s, j, r.Start)
	}
	// The remainder arrives through the event list rather than a recursive
	// handleArrival: Preempt runs inside a policy callback, and dispatching
	// policy.Arrive reentrantly from here would hand the policy a nested
	// scheduling pass over state it is mid-way through mutating.
	s.pushJob(s.now, evRequeue, rem)
	s.pendingReal++
	return nil
}

// Run executes the policy over the workload and returns the result. The
// workload must validate against the system size; it is not mutated (split
// segments are fresh Job values).
func (s *Simulator) Run(workload []*job.Job) (*Result, error) {
	if s.policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if err := job.ValidateAll(workload, s.cfg.SystemSize); err != nil {
		return nil, err
	}
	if s.cfg.Preemptable && s.cfg.MaxRuntime > 0 {
		// Both features drive the chain machinery: splitting derives segment
		// k+1 from the recorded original at fixed MaxRuntime offsets, while
		// preemption rewrites a victim's Segments and resubmits an ad-hoc
		// remainder. Composed, a preempted split segment would orphan the
		// original's later chunks, so the combination is rejected outright
		// (sched.Spec.Validate already rejects preempt= with max=).
		return nil, fmt.Errorf("sim: Preemptable and MaxRuntime are mutually exclusive")
	}
	maxID := job.ID(0)
	for _, j := range workload {
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	s.nextID = maxID + 1
	if s.cfg.FirstSegmentID > s.nextID {
		s.nextID = s.cfg.FirstSegmentID
	}
	// Boundaries depend only on the epoch's phase (they fire at epoch +
	// k·interval); fold a positive epoch to its congruent value in
	// (-interval, 0] so the tracker's accrual frontier never starts ahead
	// of the clock.
	epoch := s.cfg.FairshareEpoch
	if epoch > 0 {
		interval := s.cfg.Fairshare.DecayInterval
		if interval <= 0 {
			interval = 24 * 3600
		}
		if epoch %= interval; epoch > 0 {
			epoch -= interval
		}
	}
	s.fs = fairshare.NewTracker(s.cfg.Fairshare, epoch)
	// The tracker's accrual frontier starts at the epoch; settle the empty
	// pre-trace span [epoch, 0) now, or the first real accrual would charge
	// it to whatever is running by then.
	if err := s.fs.Accrue(0, nil); err != nil {
		return nil, err
	}
	s.now = 0
	// Size the hot structures once: every job contributes at least an
	// arrival and a completion, and the records map holds one entry per
	// submission (plus split segments, which stay rare).
	s.q.Grow(2 * len(workload))
	s.records = newRecordIndex(len(workload), maxID, s.sparseRecords)
	s.order = make([]*Record, 0, len(workload))
	s.userIdx = userdex.Map[int32]{}
	for _, j := range workload {
		for _, sub := range s.submissionsFor(j) {
			if s.cfg.Preemptable && sub == j {
				// Preemption mutates the preempted job's chain metadata;
				// run on private clones so workload slices shared across
				// concurrent runs (campaign cells, policy-parallel tasks)
				// are never written to.
				sub = j.Clone()
			}
			s.pushJob(sub.Submit, evArrival, sub)
			s.pendingReal++
		}
	}
	s.policy.Reset(s)
	s.rescheduleWake()

	for {
		e, ok := s.q.Pop()
		if !ok {
			break
		}
		if e.Time < s.now {
			return nil, fmt.Errorf("sim: event time %d before now %d", e.Time, s.now)
		}
		if e.Time > s.now {
			s.advanceTo(e.Time)
		}
		s.events++
		if e.Kind != evWake {
			s.pendingReal--
		}
		switch e.Kind {
		case evArrival, evRequeue:
			s.handleArrival(e.Payload.job)
		case evCompletion:
			s.handleCompletionBatch(e.Payload.job)
		case evWake:
			if e.Payload.wake != s.wakeVer {
				continue // stale wake; a newer one is scheduled
			}
			s.pendingWakeOK = false // consumed
			s.dispatch(func() { s.policy.Wake(s) })
		case evWCLCheck:
			s.handleWCLCheck(e.Payload.job)
		default:
			return nil, fmt.Errorf("sim: unknown event kind %d", e.Kind)
		}
		if s.cfg.Validate {
			if err := s.checkInvariants(); err != nil {
				return nil, err
			}
		}
	}
	return s.finish()
}

// advanceTo reports the elapsed interval to observers, settles fairshare
// accrual, and moves the clock. Both the queued-node total and the per-user
// running aggregation are maintained incrementally by the arrival/start/
// release bookkeeping, so no per-event walk of the queue or running set is
// needed here.
func (s *Simulator) advanceTo(t int64) {
	for _, o := range s.observers {
		o.Interval(s.now, t, s.used, s.queuedNodes)
	}
	if err := s.fs.AccrueAggregated(t, s.userNodes); err != nil {
		// Accrue only fails on time reversal, which advanceTo precludes.
		panic(err)
	}
	s.now = t
	s.availDirty = true
}

// addUserNodes adjusts the per-user running-node aggregation by delta,
// dropping users whose count returns to zero (so the aggregation always
// mirrors an aggregation of the live running set).
func (s *Simulator) addUserNodes(user, delta int) {
	if i, ok := s.userIdx.Get(user); ok {
		s.userNodes[i].Nodes += delta
		if s.userNodes[i].Nodes == 0 {
			last := len(s.userNodes) - 1
			s.userNodes[i] = s.userNodes[last]
			s.userIdx.Set(s.userNodes[i].User, i)
			s.userNodes = s.userNodes[:last]
			s.userIdx.Delete(user)
		}
		return
	}
	s.userIdx.Set(user, int32(len(s.userNodes)))
	s.userNodes = append(s.userNodes, fairshare.Usage{User: user, Nodes: delta})
}

func (s *Simulator) handleArrival(j *job.Job) {
	if s.cfg.Kill == KillWhenNeeded {
		s.killOverruns()
	}
	rec := &Record{Job: j, Submit: s.now}
	s.records.put(j.ID, rec)
	s.order = append(s.order, rec)
	s.queuedNodes += j.Nodes
	queued := s.policy.Queued()
	for _, o := range s.observers {
		o.JobArrived(s, j, queued)
	}
	s.dispatch(func() { s.policy.Arrive(s, j) })
}

// handleCompletionBatch processes every completion event scheduled at the
// current instant as one scheduling cycle: all completing jobs release
// their nodes first, then the policy reacts to each. Releasing in bulk
// matters — were the policy invoked after the first release alone, other
// jobs completing at the same instant would still look running (and,
// having reached their estimates, like overrunners), distorting every
// reservation computed in that pass.
func (s *Simulator) handleCompletionBatch(first *job.Job) {
	batch := append(s.batchBuf[:0], first)
	for {
		e, ok := s.q.Peek()
		if !ok || e.Time != s.now || e.Kind != evCompletion {
			break
		}
		s.q.Pop()
		s.events++
		s.pendingReal--
		batch = append(batch, e.Payload.job)
	}
	s.batchBuf = batch // keep the grown buffer for the next instant
	type done struct {
		job   *job.Job
		start int64
	}
	finished := make([]done, 0, len(batch))
	for _, j := range batch {
		if start, ok := s.release(j, false); ok {
			finished = append(finished, done{j, start})
		}
	}
	for _, d := range finished {
		for _, o := range s.observers {
			o.JobCompleted(s, d.job, d.start)
		}
	}
	for _, d := range finished {
		if next := s.nextSegment(d.job); next != nil {
			// The checkpoint restart is resubmitted within the same
			// scheduling cycle as the completion (a production scheduler
			// polls its queue periodically, so the two coincide): enqueue
			// the segment before the policy reacts, so it competes for the
			// freed nodes under the regular queue priority.
			s.handleArrival(next)
		}
		job := d.job
		s.dispatch(func() { s.policy.Complete(s, job) })
	}
}

// handleKill terminates a running job at its wall-clock limit.
func (s *Simulator) handleKill(j *job.Job) {
	start, ok := s.release(j, true)
	if !ok {
		return
	}
	for _, o := range s.observers {
		o.JobCompleted(s, j, start)
	}
	if next := s.nextSegment(j); next != nil {
		s.handleArrival(next)
	}
	s.dispatch(func() { s.policy.Complete(s, j) })
}

// release performs the completion bookkeeping: removes the job from the
// running set, returns its nodes and finalizes its record. ok is false for
// a stale completion (the job was killed earlier under KillWhenNeeded).
func (s *Simulator) release(j *job.Job, killed bool) (start int64, ok bool) {
	idx := -1
	for i, r := range s.running {
		if r.Job.ID == j.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		if killed || s.cfg.Kill == KillWhenNeeded || s.preempted[j.ID] {
			// Under KillWhenNeeded the job's original full-runtime
			// completion event still fires after an earlier kill; it is
			// stale. Likewise a preempted job's originally scheduled
			// completion. (KillAlways schedules the completion at the
			// truncated time directly, so a missing job there is a bug.)
			return 0, false
		}
		panic(fmt.Sprintf("sim: completion for job %d not running", j.ID))
	}
	start = s.running[idx].Start
	copy(s.running[idx:], s.running[idx+1:])
	s.running[len(s.running)-1] = RunningJob{} // drop the job pointer for the GC
	s.running = s.running[:len(s.running)-1]
	s.used -= j.Nodes
	s.addUserNodes(j.User, -j.Nodes)
	s.availDirty = true
	rec := s.records.get(j.ID)
	rec.Complete = s.now
	rec.Finished = true
	if killed {
		rec.Killed = true
	}
	return start, true
}

// handleWCLCheck fires when a running job reaches its wall-clock limit under
// KillWhenNeeded: the job is killed if any work is queued.
func (s *Simulator) handleWCLCheck(j *job.Job) {
	running := false
	for _, r := range s.running {
		if r.Job.ID == j.ID {
			running = true
			break
		}
	}
	if !running {
		return
	}
	if s.queuedNodes == 0 {
		return // nodes not needed; the job may keep running
	}
	s.handleKill(j)
}

// killOverruns terminates every running job past its wall-clock limit; the
// arrival being processed proves the processors are needed.
func (s *Simulator) killOverruns() {
	for {
		victim := (*job.Job)(nil)
		for _, r := range s.running {
			if r.Start+r.Job.Estimate <= s.now && r.Job.Estimate < r.Job.Runtime {
				victim = r.Job
				break
			}
		}
		if victim == nil {
			return
		}
		s.handleKill(victim)
	}
}

func (s *Simulator) dispatch(f func()) {
	s.inEvent = true
	f()
	s.inEvent = false
	s.rescheduleWake()
}

// rescheduleWake pushes a wake event at the earliest of the policy's own
// request and the next fairshare decay boundary (which can reorder the
// queue) while work is queued.
func (s *Simulator) rescheduleWake() {
	var t int64
	have := false
	if pt, ok := s.policy.NextWake(s.now); ok && pt > s.now {
		t, have = pt, true
	}
	// Decay boundaries reorder the queue, so wake the policy at them — but
	// only while something can still change (jobs running or real events
	// pending). Without the guard, a policy that never starts a queued job
	// would keep the simulation alive on decay wake-ups forever.
	if s.queuedNodes > 0 && (len(s.running) > 0 || s.pendingReal > 0) {
		b := s.fs.NextBoundaryAfter(s.now)
		if !have || b < t {
			t, have = b, true
		}
	}
	if !have {
		return
	}
	if s.pendingWakeOK && s.pendingWake == t {
		return // an identical wake is already on the list
	}
	s.wakeVer++
	s.pendingWake, s.pendingWakeOK = t, true
	s.q.Push(eventq.Event[evPayload]{Time: t, Prio: eventPrio(evWake), Kind: evWake, Payload: evPayload{wake: s.wakeVer}})
}

func (s *Simulator) finish() (*Result, error) {
	for _, o := range s.observers {
		o.Done(s)
	}
	res := &Result{
		Policy:     s.policy.Name(),
		SystemSize: s.cfg.SystemSize,
		Events:     s.events,
	}
	if len(s.running) > 0 || s.used != 0 {
		return nil, fmt.Errorf("sim: %d jobs still running at end of events", len(s.running))
	}
	res.Records = append(res.Records, s.order...)
	sort.SliceStable(res.Records, func(i, k int) bool {
		if res.Records[i].Submit != res.Records[k].Submit {
			return res.Records[i].Submit < res.Records[k].Submit
		}
		return res.Records[i].Job.ID < res.Records[k].Job.ID
	})
	first, last := int64(-1), int64(-1)
	for _, r := range res.Records {
		if !r.Finished {
			return nil, fmt.Errorf("sim: job %d never completed (policy %s lost it)", r.Job.ID, s.policy.Name())
		}
		if first < 0 || r.Start < first {
			first = r.Start
		}
		if r.Complete > last {
			last = r.Complete
		}
	}
	if first >= 0 {
		res.FirstStart = first
		res.LastCompletion = last
		res.Makespan = last - first
	}
	return res, nil
}

// checkInvariants validates conservation properties after every event.
func (s *Simulator) checkInvariants() error {
	used := 0
	for _, r := range s.running {
		used += r.Job.Nodes
		if r.Start > s.now {
			return fmt.Errorf("sim: job %d started in the future", r.Job.ID)
		}
	}
	if used != s.used {
		return fmt.Errorf("sim: used nodes drift: tracked %d, actual %d", s.used, used)
	}
	if used > s.cfg.SystemSize {
		return fmt.Errorf("sim: %d nodes in use on a %d-node system", used, s.cfg.SystemSize)
	}
	queuedNodes := 0
	for _, qj := range s.policy.Queued() {
		rec := s.records.get(qj.ID)
		if rec == nil {
			return fmt.Errorf("sim: queued job %d unknown", qj.ID)
		}
		if rec.Started {
			return fmt.Errorf("sim: queued job %d already started", qj.ID)
		}
		queuedNodes += qj.Nodes
	}
	if queuedNodes != s.queuedNodes {
		return fmt.Errorf("sim: queued nodes drift: tracked %d, actual %d", s.queuedNodes, queuedNodes)
	}
	userNodes := make(map[int]int)
	for _, r := range s.running {
		userNodes[r.Job.User] += r.Job.Nodes
	}
	if len(userNodes) != len(s.userNodes) {
		return fmt.Errorf("sim: user aggregation drift: tracked %d users, actual %d", len(s.userNodes), len(userNodes))
	}
	for _, u := range s.userNodes {
		if userNodes[u.User] != u.Nodes {
			return fmt.Errorf("sim: user %d aggregation drift: tracked %d nodes, actual %d", u.User, u.Nodes, userNodes[u.User])
		}
	}
	return nil
}
