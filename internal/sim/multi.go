package sim

import (
	"fmt"
	"sync"

	"fairsched/internal/job"
)

// PartitionRun describes one partition's independent event loop: its own
// capacity, policy instance, observers and workload slice. Partitions
// share nothing at runtime — no jobs migrate and no state is read across
// loops — which makes them the intra-run sharding seam: one big run
// executes as len(runs) loops, in parallel if asked, with results merged
// afterwards.
type PartitionRun struct {
	// Name labels the partition in errors and reports.
	Name string
	// Config parameterizes the partition's simulator (SystemSize is the
	// partition's node count; FirstSegmentID its split-segment id range).
	Config Config
	// Policy is the partition's scheduler (policies hold per-run state, so
	// each partition needs its own instance).
	Policy Policy
	// Observers receive the partition's lifecycle callbacks.
	Observers []Observer
	// Workload is the partition's job stream (jobs routed to it).
	Workload []*job.Job
}

// RunPartitions executes every partition run, at most `parallel`
// concurrently (values < 1 mean 1), and returns the per-partition results
// in input order. Each partition is a fully deterministic independent
// simulation, so the combined outcome is identical at every parallelism
// width — the campaign engine's byte-equivalence bar, applied inside a
// single run. The first error (by input order) is returned, wrapped with
// its partition's name.
func RunPartitions(parallel int, runs []PartitionRun) ([]*Result, error) {
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(runs) {
		parallel = len(runs)
	}
	results := make([]*Result, len(runs))
	errs := make([]error, len(runs))
	if parallel <= 1 {
		for i := range runs {
			results[i], errs[i] = runPartition(&runs[i])
		}
	} else {
		idx := make(chan int, len(runs))
		for i := range runs {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = runPartition(&runs[i])
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("partition %s: %w", runs[i].Name, err)
		}
	}
	return results, nil
}

func runPartition(r *PartitionRun) (*Result, error) {
	return New(r.Config, r.Policy, r.Observers...).Run(r.Workload)
}
