package sim

import (
	"testing"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
)

// greedy is a minimal test policy: start anything that fits, FCFS.
type greedy struct {
	queue []*job.Job
}

func (p *greedy) Name() string { return "greedy" }
func (p *greedy) Reset(Env)    { p.queue = nil }
func (p *greedy) Arrive(env Env, j *job.Job) {
	p.queue = append(p.queue, j)
	p.try(env)
}
func (p *greedy) Complete(env Env, _ *job.Job) { p.try(env) }
func (p *greedy) Wake(env Env)                 { p.try(env) }
func (p *greedy) NextWake(int64) (int64, bool) { return 0, false }
func (p *greedy) Queued() []*job.Job           { return p.queue }
func (p *greedy) try(env Env) {
	kept := p.queue[:0]
	for _, j := range p.queue {
		if j.Nodes <= env.FreeNodes() {
			if err := env.Start(j); err != nil {
				panic(err)
			}
			continue
		}
		kept = append(kept, j)
	}
	p.queue = kept
}

func run(t *testing.T, cfg Config, jobs []*job.Job) *Result {
	t.Helper()
	cfg.Validate = true
	res, err := New(cfg, &greedy{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleJobLifecycle(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 100, Runtime: 50, Estimate: 60, Nodes: 4}}
	res := run(t, Config{SystemSize: 8}, jobs)
	if len(res.Records) != 1 {
		t.Fatalf("got %d records", len(res.Records))
	}
	r := res.Records[0]
	if r.Start != 100 || r.Complete != 150 {
		t.Fatalf("start/complete = %d/%d, want 100/150", r.Start, r.Complete)
	}
	if r.Wait() != 0 || r.Turnaround() != 50 {
		t.Fatalf("wait/turnaround = %d/%d", r.Wait(), r.Turnaround())
	}
	if res.Makespan != 50 {
		t.Fatalf("makespan = %d", res.Makespan)
	}
}

func TestQueuedJobStartsOnCompletion(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 8},
		{ID: 2, User: 2, Submit: 10, Runtime: 20, Estimate: 20, Nodes: 8},
	}
	res := run(t, Config{SystemSize: 8}, jobs)
	if got := res.Records[1].Start; got != 100 {
		t.Fatalf("job 2 started at %d, want 100", got)
	}
}

func TestStartValidation(t *testing.T) {
	s := New(Config{SystemSize: 4}, &greedy{})
	j := &job.Job{ID: 1, User: 1, Runtime: 10, Estimate: 10, Nodes: 2}
	if err := s.Start(j); err == nil {
		t.Fatal("Start outside an event accepted")
	}
}

func TestRunRejectsInvalidWorkload(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Runtime: 10, Estimate: 10, Nodes: 100}}
	if _, err := New(Config{SystemSize: 4}, &greedy{}).Run(jobs); err == nil {
		t.Fatal("too-wide job accepted")
	}
	dup := []*job.Job{
		{ID: 1, User: 1, Runtime: 10, Estimate: 10, Nodes: 1},
		{ID: 1, User: 1, Runtime: 10, Estimate: 10, Nodes: 1},
	}
	if _, err := New(Config{SystemSize: 4}, &greedy{}).Run(dup); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if _, err := New(Config{SystemSize: 4}, nil).Run(nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestFairshareAccrualDuringRun(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 7, Submit: 0, Runtime: 1000, Estimate: 1000, Nodes: 4},
		// A second arrival at t=500 forces the tracker to settle mid-run.
		{ID: 2, User: 8, Submit: 500, Runtime: 100, Estimate: 100, Nodes: 1},
	}
	s := New(Config{SystemSize: 8, Validate: true}, &greedy{})
	if _, err := s.Run(jobs); err != nil {
		t.Fatal(err)
	}
	// User 7 ran 4 nodes for 1000s with a decay boundary at 86400 (never
	// crossed): usage = 4000.
	if got := s.Fairshare().Usage(7); got != 4000 {
		t.Fatalf("user 7 usage = %v, want 4000", got)
	}
}

func TestEstimatedCompletionBacksOffExponentially(t *testing.T) {
	r := RunningJob{Job: &job.Job{Estimate: 100, Runtime: 1000}, Start: 0}
	cases := []struct{ now, want int64 }{
		{0, 100}, {99, 100}, {100, 200}, {250, 400}, {500, 800}, {1500, 1600},
	}
	for _, tc := range cases {
		if got := r.EstimatedCompletion(tc.now); got != tc.want {
			t.Errorf("EstimatedCompletion(now=%d) = %d, want %d", tc.now, got, tc.want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	jobs := make([]*job.Job, 0, 50)
	for i := 0; i < 50; i++ {
		jobs = append(jobs, &job.Job{
			ID:       job.ID(i + 1),
			User:     i % 7,
			Submit:   int64(i * 37 % 500),
			Runtime:  int64(i*97%1000 + 1),
			Estimate: int64(i*131%2000 + 1),
			Nodes:    i%16 + 1,
		})
	}
	runOnce := func() []int64 {
		res, err := New(Config{SystemSize: 32, Validate: true}, &greedy{}).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		starts := make([]int64, len(res.Records))
		for i, r := range res.Records {
			starts[i] = r.Start
		}
		return starts
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at record %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestKillAlwaysTruncatesAtEstimate(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 300, Nodes: 2}}
	res := run(t, Config{SystemSize: 4, Kill: KillAlways}, jobs)
	r := res.Records[0]
	if !r.Killed || r.Complete != 300 {
		t.Fatalf("killed=%v complete=%d, want killed at 300", r.Killed, r.Complete)
	}
}

func TestKillWhenNeededSparesIdleSystem(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 300, Nodes: 2}}
	res := run(t, Config{SystemSize: 4, Kill: KillWhenNeeded}, jobs)
	r := res.Records[0]
	if r.Killed || r.Complete != 1000 {
		t.Fatalf("job killed with no work queued: killed=%v complete=%d", r.Killed, r.Complete)
	}
}

func TestKillWhenNeededKillsWhenWorkQueued(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 300, Nodes: 4},
		// Arrives before the overrun and cannot fit: job 1 dies at its
		// wall-clock limit.
		{ID: 2, User: 2, Submit: 100, Runtime: 10, Estimate: 10, Nodes: 4},
	}
	res := run(t, Config{SystemSize: 4, Kill: KillWhenNeeded}, jobs)
	r1 := res.Records[0]
	if !r1.Killed || r1.Complete != 300 {
		t.Fatalf("overrunning job not killed at limit: killed=%v complete=%d", r1.Killed, r1.Complete)
	}
	if got := res.Records[1].Start; got != 300 {
		t.Fatalf("waiting job started at %d, want 300", got)
	}
}

func TestKillWhenNeededKillsOnLateArrival(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 300, Nodes: 4},
		// Arrives after the limit expired; the overrunner dies on arrival.
		{ID: 2, User: 2, Submit: 600, Runtime: 10, Estimate: 10, Nodes: 4},
	}
	res := run(t, Config{SystemSize: 4, Kill: KillWhenNeeded}, jobs)
	r1 := res.Records[0]
	if !r1.Killed || r1.Complete != 600 {
		t.Fatalf("overrunning job should die at the arrival: killed=%v complete=%d", r1.Killed, r1.Complete)
	}
}

func TestEventsCounted(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}}
	res := run(t, Config{SystemSize: 4}, jobs)
	if res.Events < 2 {
		t.Fatalf("events = %d, want at least arrival+completion", res.Events)
	}
}

func TestRunWithDecayWakeups(t *testing.T) {
	// A job queued across a decay boundary forces the simulator's decay
	// wake-up path (queue non-empty at the boundary).
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 2 * 86400, Estimate: 2 * 86400, Nodes: 4},
		{ID: 2, User: 2, Submit: 100, Runtime: 10, Estimate: 10, Nodes: 4},
	}
	cfg := Config{SystemSize: 4, Fairshare: fairshare.Config{DecayFactor: 0.5, DecayInterval: 86400}}
	res := run(t, cfg, jobs)
	if got := res.Records[1].Start; got != 2*86400 {
		t.Fatalf("job 2 started at %d", got)
	}
}
