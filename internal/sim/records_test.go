package sim

import (
	"math/rand"
	"testing"

	"fairsched/internal/job"
)

// runBoth executes the same workload through the dense record index and
// the forced-sparse (map) layout and returns both results.
func runBoth(t *testing.T, cfg Config, jobs []*job.Job) (dense, sparse *Result) {
	t.Helper()
	sd := New(cfg, &greedy{})
	rd, err := sd.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sd.records.sparse != nil {
		t.Fatal("dense run fell back to the map layout")
	}
	ss := New(cfg, &greedy{})
	ss.sparseRecords = true
	rs, err := ss.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return rd, rs
}

func assertSameRecords(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Events != want.Events {
		t.Errorf("events %d != %d", got.Events, want.Events)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("%d records != %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		g, w := got.Records[i], want.Records[i]
		if g.Job.ID != w.Job.ID || g.Submit != w.Submit || g.Start != w.Start ||
			g.Complete != w.Complete || g.Killed != w.Killed || g.Finished != w.Finished {
			t.Fatalf("record %d diverged: dense %+v (job %d) vs sparse %+v (job %d)",
				i, *g, g.Job.ID, *w, w.Job.ID)
		}
	}
}

// TestRecordIndexDenseMatchesSparse: the dense slice is a pure layout
// change — randomized workloads (fuzz-style: random widths, runtimes,
// estimate quality, users and arrival bursts) must produce records
// identical to the map layout, including under max-runtime splitting
// (segment ids allocated past the workload maximum) and kills.
func TestRecordIndexDenseMatchesSparse(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(60) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(900) + 1
			est := runtime
			switch rng.Intn(3) {
			case 0:
				est = runtime * (rng.Int63n(6) + 1)
			case 1:
				est = runtime/2 + 1
			}
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(5) + 1,
				Submit:   rng.Int63n(2000),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		cfgs := []Config{
			{SystemSize: size, Validate: true},
			{SystemSize: size, MaxRuntime: 300, Split: SplitUpfront, Validate: true},
			{SystemSize: size, MaxRuntime: 300, Split: SplitChained, Validate: true},
			{SystemSize: size, Kill: KillWhenNeeded, Validate: true},
		}
		for _, cfg := range cfgs {
			dense, sparse := runBoth(t, cfg, jobs)
			assertSameRecords(t, dense, sparse)
		}
	}
}

// A sparse id space (ids far above the workload size) must fall back to
// the map layout and still run correctly.
func TestRecordIndexSparseFallback(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1 << 40, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
		{ID: 1<<40 + 7, User: 2, Submit: 50, Runtime: 100, Estimate: 100, Nodes: 4},
	}
	s := New(Config{SystemSize: 4, Validate: true}, &greedy{})
	res, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.records.sparse == nil {
		t.Fatal("sparse id space used the dense layout")
	}
	if len(res.Records) != 2 || !res.Records[0].Finished || !res.Records[1].Finished {
		t.Fatalf("sparse run lost records: %+v", res.Records)
	}
}

// The dense layout must also carry split segments whose ids are allocated
// above the reserved headroom (forcing the append-growth path).
func TestRecordIndexGrowsForSegments(t *testing.T) {
	jobs := []*job.Job{
		// One job split into 40 segments: ids 2..41 land well past the
		// initial dense sizing for a 1-job workload.
		{ID: 1, User: 1, Submit: 0, Runtime: 4000, Estimate: 4000, Nodes: 2},
	}
	cfg := Config{SystemSize: 4, MaxRuntime: 100, Split: SplitUpfront, Validate: true}
	dense, sparse := runBoth(t, cfg, jobs)
	if len(dense.Records) != 40 {
		t.Fatalf("got %d segment records, want 40", len(dense.Records))
	}
	assertSameRecords(t, dense, sparse)
}
