package sim

import (
	"testing"

	"fairsched/internal/job"
)

// availProbe is a policy that inspects the shared availability profile
// during its scheduling events.
type availProbe struct {
	greedy
	t       *testing.T
	checked bool
}

func (p *availProbe) Arrive(env Env, j *job.Job) {
	p.inspect(env)
	p.greedy.Arrive(env, j)
}

func (p *availProbe) inspect(env Env) {
	prof := env.Availability()
	now := env.Now()
	if prof.Origin() != now {
		p.t.Errorf("availability origin %d != now %d", prof.Origin(), now)
	}
	if got := prof.FreeAt(now); got != env.FreeNodes() {
		p.t.Errorf("availability free at now = %d, want FreeNodes %d", got, env.FreeNodes())
	}
	if got := prof.SteadyFree(); got != env.SystemSize() {
		p.t.Errorf("availability steady free = %d, want full system %d", got, env.SystemSize())
	}
	// Each running job's nodes return exactly at its estimated completion.
	for _, r := range env.Running() {
		ec := r.EstimatedCompletion(now)
		if ec <= now {
			continue
		}
		before, after := prof.FreeAt(ec-1), prof.FreeAt(ec)
		if after < before {
			p.t.Errorf("capacity shrank across a release at %d: %d -> %d", ec, before, after)
		}
	}
	// The cache returns the same profile while nothing changed...
	if again := env.Availability(); again != prof {
		p.t.Error("availability rebuilt without invalidation")
	}
	p.checked = true
}

func TestAvailabilityReflectsRunningSetAndCaches(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 120, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 200, Estimate: 200, Nodes: 2},
		{ID: 3, User: 3, Submit: 20, Runtime: 50, Estimate: 60, Nodes: 4},
		{ID: 4, User: 4, Submit: 150, Runtime: 80, Estimate: 80, Nodes: 8},
	}
	probe := &availProbe{t: t}
	if _, err := New(Config{SystemSize: 8, Validate: true}, probe).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if !probe.checked {
		t.Fatal("probe never ran")
	}
}

// startInvalidates is a policy asserting that Start invalidates the shared
// profile within one scheduling pass.
type startInvalidates struct {
	greedy
	t       *testing.T
	checked bool
}

func (p *startInvalidates) Arrive(env Env, j *job.Job) {
	if j.Nodes <= env.FreeNodes() {
		before := env.Availability().FreeAt(env.Now())
		if err := env.Start(j); err != nil {
			p.t.Fatal(err)
		}
		after := env.Availability().FreeAt(env.Now())
		if after != before-j.Nodes {
			p.t.Errorf("availability stale after Start: free %d -> %d, want %d",
				before, after, before-j.Nodes)
		}
		p.checked = true
		return
	}
	p.greedy.Arrive(env, j)
}

func TestAvailabilityInvalidatedByStart(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 3},
		{ID: 2, User: 2, Submit: 5, Runtime: 100, Estimate: 100, Nodes: 3},
	}
	probe := &startInvalidates{t: t}
	if _, err := New(Config{SystemSize: 8, Validate: true}, probe).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if !probe.checked {
		t.Fatal("probe never started a job")
	}
}
