package sim

import (
	"testing"

	"fairsched/internal/job"
)

const h = int64(3600)

func splitRun(t *testing.T, mode SplitMode, jobs []*job.Job) *Result {
	t.Helper()
	cfg := Config{SystemSize: 64, MaxRuntime: 72 * h, Split: mode, Validate: true}
	res, err := New(cfg, &greedy{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func longJob() *job.Job {
	// 200h runtime, 250h estimate: splits into 72+72+56.
	return &job.Job{ID: 1, User: 1, Submit: 0, Runtime: 200 * h, Estimate: 250 * h, Nodes: 8}
}

func segments(res *Result) []*Record {
	var out []*Record
	for _, r := range res.Records {
		if r.Job.Parent != 0 {
			out = append(out, r)
		}
	}
	return out
}

func TestSplitSegmentShapes(t *testing.T) {
	res := splitRun(t, SplitUpfront, []*job.Job{longJob()})
	segs := segments(res)
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	wantRuntime := []int64{72 * h, 72 * h, 56 * h}
	wantEst := []int64{72 * h, 72 * h, 72 * h} // 250-144=106h capped at 72h
	for i, s := range segs {
		if s.Job.Runtime != wantRuntime[i] {
			t.Errorf("segment %d runtime = %d, want %d", i+1, s.Job.Runtime, wantRuntime[i])
		}
		if s.Job.Estimate != wantEst[i] {
			t.Errorf("segment %d estimate = %d, want %d", i+1, s.Job.Estimate, wantEst[i])
		}
		if s.Job.Parent != 1 || s.Job.Segment != i+1 || s.Job.Segments != 3 {
			t.Errorf("segment %d metadata wrong: %+v", i+1, s.Job)
		}
		wantChain := 200*h - int64(i)*72*h
		if s.Job.ChainRuntime != wantChain {
			t.Errorf("segment %d chain runtime = %d, want %d", i+1, s.Job.ChainRuntime, wantChain)
		}
	}
}

func TestSplitUpfrontSubmitsTogether(t *testing.T) {
	res := splitRun(t, SplitUpfront, []*job.Job{longJob()})
	for _, s := range segments(res) {
		if s.Submit != 0 {
			t.Fatalf("upfront segment submitted at %d, want 0", s.Submit)
		}
	}
}

func TestSplitStaggeredSubmitsAtOffsets(t *testing.T) {
	res := splitRun(t, SplitStaggered, []*job.Job{longJob()})
	segs := segments(res)
	want := []int64{0, 72 * h, 144 * h}
	for i, s := range segs {
		if s.Submit != want[i] {
			t.Fatalf("staggered segment %d submitted at %d, want %d", i+1, s.Submit, want[i])
		}
	}
}

func TestSplitChainedSubmitsOnCompletion(t *testing.T) {
	res := splitRun(t, SplitChained, []*job.Job{longJob()})
	segs := segments(res)
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	// On an idle machine each chunk starts immediately, so chunk k+1 is
	// submitted exactly at chunk k's completion.
	if segs[1].Submit != segs[0].Complete {
		t.Fatalf("segment 2 submitted at %d, want %d", segs[1].Submit, segs[0].Complete)
	}
	if segs[2].Submit != segs[1].Complete {
		t.Fatalf("segment 3 submitted at %d, want %d", segs[2].Submit, segs[1].Complete)
	}
	if got := segs[2].Complete; got != 200*h {
		t.Fatalf("chain finished at %d, want %d", got, 200*h)
	}
}

func TestSplitPreservesTotalWork(t *testing.T) {
	for _, mode := range []SplitMode{SplitUpfront, SplitStaggered, SplitChained} {
		res := splitRun(t, mode, []*job.Job{longJob()})
		var total int64
		for _, r := range res.Records {
			total += r.Job.ProcSeconds()
		}
		if want := int64(8) * 200 * h; total != want {
			t.Fatalf("%v: total proc-seconds %d, want %d", mode, total, want)
		}
	}
}

func TestShortJobNotSplitButEstimateCapped(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 10 * h, Estimate: 100 * h, Nodes: 4}}
	res := splitRun(t, SplitUpfront, jobs)
	if len(res.Records) != 1 {
		t.Fatalf("short job split: %d records", len(res.Records))
	}
	if got := res.Records[0].Job.Estimate; got != 72*h {
		t.Fatalf("estimate = %d, want capped at 72h", got)
	}
	if res.Records[0].Job.Parent != 0 {
		t.Fatal("short job should not be a segment")
	}
}

func TestSplitUnderestimatedChain(t *testing.T) {
	// 200h runtime but only a 100h estimate: the final chunk keeps the
	// leftover budget (100-144 < 0 -> clamped to 1s), preserving the
	// overrun behaviour.
	j := &job.Job{ID: 1, User: 1, Submit: 0, Runtime: 200 * h, Estimate: 100 * h, Nodes: 8}
	res := splitRun(t, SplitUpfront, []*job.Job{j})
	segs := segments(res)
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	if got := segs[2].Job.Estimate; got != 1 {
		t.Fatalf("last segment estimate = %d, want clamped 1", got)
	}
}

func TestSplitExactMultiple(t *testing.T) {
	j := &job.Job{ID: 1, User: 1, Submit: 0, Runtime: 144 * h, Estimate: 144 * h, Nodes: 8}
	res := splitRun(t, SplitUpfront, []*job.Job{j})
	segs := segments(res)
	if len(segs) != 2 {
		t.Fatalf("144h job should split into exactly 2 segments, got %d", len(segs))
	}
	for _, s := range segs {
		if s.Job.Runtime != 72*h {
			t.Fatalf("segment runtime = %d", s.Job.Runtime)
		}
	}
}

func TestSplitDisabledByDefault(t *testing.T) {
	res, err := New(Config{SystemSize: 64, Validate: true}, &greedy{}).Run([]*job.Job{longJob()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Job.Parent != 0 {
		t.Fatal("job split without MaxRuntime configured")
	}
}

func TestSegmentIDsAreFresh(t *testing.T) {
	jobs := []*job.Job{
		longJob(),
		{ID: 2, User: 2, Submit: 10, Runtime: h, Estimate: h, Nodes: 4},
	}
	res := splitRun(t, SplitUpfront, jobs)
	seen := map[job.ID]bool{}
	for _, r := range res.Records {
		if seen[r.Job.ID] {
			t.Fatalf("duplicate record id %d", r.Job.ID)
		}
		seen[r.Job.ID] = true
	}
	for _, s := range segments(res) {
		if s.Job.ID <= 2 {
			t.Fatalf("segment id %d collides with workload ids", s.Job.ID)
		}
	}
}

// TestSegmentIDBudgetExactUnderKills pins the SegmentIDBudget contract
// against the kill × split matrix: the budget is exact (not an upper
// bound) in every mode because chained chains always reach their last
// segment — interior segments are announced at exactly their runtime, so
// no kill policy can truncate them; only the final segment of an
// under-estimated original can die at the wall-clock limit.
func TestSegmentIDBudgetExactUnderKills(t *testing.T) {
	// Three originals: over-estimated (3 segments), under-estimated
	// (4 segments, final one killable under KillAlways: estimate budget
	// left = 250-216=34h < 40h runtime), and unsplit filler that keeps
	// the machine contended so KillWhenNeeded has queued work to kill for.
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 200 * h, Estimate: 250 * h, Nodes: 8},
		{ID: 2, User: 2, Submit: 0, Runtime: 256 * h, Estimate: 250 * h, Nodes: 8},
		{ID: 3, User: 3, Submit: 1, Runtime: 60 * h, Estimate: 70 * h, Nodes: 56},
		{ID: 4, User: 4, Submit: 2, Runtime: 60 * h, Estimate: 70 * h, Nodes: 56},
	}
	budget := SegmentIDBudget(jobs, 72*h)
	if budget != 3+4 {
		t.Fatalf("budget = %d, want 7", budget)
	}
	for _, mode := range []SplitMode{SplitUpfront, SplitStaggered, SplitChained} {
		for _, kill := range []KillPolicy{KillNever, KillWhenNeeded, KillAlways} {
			cfg := Config{SystemSize: 64, MaxRuntime: 72 * h, Split: mode, Kill: kill, Validate: true}
			var cl []*job.Job
			for _, j := range jobs {
				cl = append(cl, j.Clone())
			}
			res, err := New(cfg, &greedy{}).Run(cl)
			if err != nil {
				t.Fatal(err)
			}
			segs := segments(res)
			if int64(len(segs)) != budget {
				t.Errorf("%v/%v: %d segment ids allocated, budget says %d", mode, kill, len(segs), budget)
			}
			maxID := job.ID(4)
			for _, s := range segs {
				if s.Job.ID <= 4 || s.Job.ID > maxID+job.ID(budget) {
					t.Errorf("%v/%v: segment id %d outside (4, %d]", mode, kill, s.Job.ID, 4+budget)
				}
				if s.Killed && s.Job.Segment < s.Job.Segments {
					t.Errorf("%v/%v: interior segment %d/%d killed", mode, kill, s.Job.Segment, s.Job.Segments)
				}
			}
		}
	}
}
