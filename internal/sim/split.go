package sim

import "fairsched/internal/job"

// Maximum-runtime splitting (paper §5.1): when Config.MaxRuntime is set,
// estimates are capped at the limit and jobs running longer are "broken up
// into multiple smaller jobs" of at most MaxRuntime seconds each.
//
// Two submission models are provided:
//
//   - SplitUpfront (the paper's policy): the user submits every chunk at the
//     original submission time; each chunk queues independently. This is the
//     straightforward trace transformation and what the paper's simulations
//     require ("long jobs must be submitted as several individual jobs").
//   - SplitChained (extension): chunk k+1 is submitted the instant chunk k
//     completes, modelling a strict checkpoint/restart dependency. Chained
//     chunks re-enter a deep queue with freshly degraded fairshare priority,
//     which lengthens the original job's span considerably.
//
// Estimates: interior chunks are announced as exactly MaxRuntime (a
// checkpointed chunk has known length); the final chunk keeps whatever
// estimate budget the original had left, so over- and under-estimation
// survive the split.

// SplitMode selects the submission model for split segments.
type SplitMode int

const (
	// SplitUpfront submits every segment at the original submit time — the
	// paper's §5.1 reading ("long jobs must be submitted as several
	// individual jobs"). Default.
	SplitUpfront SplitMode = iota
	// SplitStaggered submits segment k at the original submit time plus
	// (k-1)*MaxRuntime: the user's restart script resubmits each chunk one
	// limit-length later, so chunks queue early without piling up at the
	// original instant or co-running wholesale.
	SplitStaggered
	// SplitChained submits segment k+1 when segment k completes
	// (a strict checkpoint/restart dependency).
	SplitChained
)

func (m SplitMode) String() string {
	switch m {
	case SplitChained:
		return "chained"
	case SplitStaggered:
		return "staggered"
	default:
		return "upfront"
	}
}

// submissionsFor converts an original workload job into the jobs actually
// submitted at its arrival time: the job itself (estimate capped if needed),
// every segment (upfront mode), or the first segment (chained mode).
func (s *Simulator) submissionsFor(j *job.Job) []*job.Job {
	max := s.cfg.MaxRuntime
	if max <= 0 {
		return []*job.Job{j}
	}
	if j.Runtime <= max {
		if j.Estimate <= max {
			return []*job.Job{j}
		}
		c := j.Clone()
		c.Estimate = max
		return []*job.Job{c}
	}
	segments := int((j.Runtime + max - 1) / max)
	if s.cfg.Split == SplitChained {
		return []*job.Job{s.makeSegment(j, 1, segments)}
	}
	out := make([]*job.Job, segments)
	for i := 1; i <= segments; i++ {
		seg := s.makeSegment(j, i, segments)
		if s.cfg.Split == SplitStaggered {
			seg.Submit = j.Submit + int64(i-1)*max
		}
		out[i-1] = seg
	}
	return out
}

// nextSegment returns the follow-on segment to submit when seg completes in
// chained mode, or nil.
func (s *Simulator) nextSegment(seg *job.Job) *job.Job {
	if s.cfg.Split != SplitChained {
		return nil
	}
	if seg.Parent == 0 || seg.Segment >= seg.Segments {
		return nil
	}
	orig, ok := s.splitOriginals[seg.Parent]
	if !ok {
		panic("sim: segment without recorded original")
	}
	return s.makeSegment(orig, seg.Segment+1, seg.Segments)
}

// makeSegment builds segment idx (1-based) of an original job being split
// into `segments` parts.
func (s *Simulator) makeSegment(orig *job.Job, idx, segments int) *job.Job {
	max := s.cfg.MaxRuntime
	if s.splitOriginals == nil {
		s.splitOriginals = make(map[job.ID]*job.Job)
	}
	s.splitOriginals[orig.ID] = orig

	done := int64(idx-1) * max
	runtime := orig.Runtime - done
	if runtime > max {
		runtime = max
	}
	est := orig.Estimate - done
	if est < 1 {
		est = 1
	}
	if est > max {
		est = max
	}
	if idx < segments {
		est = max
	}
	seg := &job.Job{
		ID:           s.allocID(),
		User:         orig.User,
		Group:        orig.Group,
		Submit:       orig.Submit,
		Runtime:      runtime,
		Estimate:     est,
		Nodes:        orig.Nodes,
		Parent:       orig.ID,
		Segment:      idx,
		Segments:     segments,
		ChainRuntime: orig.Runtime - done,
	}
	if s.cfg.Split == SplitChained && idx > 1 {
		seg.Submit = s.now
	}
	return seg
}

func (s *Simulator) allocID() job.ID {
	id := s.nextID
	s.nextID++
	return id
}

// SegmentIDBudget returns how many fresh ids a run over workload can
// allocate to split segments under the given maximum-runtime limit: every
// job longer than the limit becomes ceil(runtime/max) segments, each with
// its own id, in every split mode. The budget is exact — never an upper
// bound — because chained chains always reach their last segment: interior
// segments are announced at exactly their runtime (makeSegment pins
// est = max = runtime for idx < segments), so no kill policy can truncate
// them, and their completion always submits the follow-on (a kill would
// too — handleKill resubmits — but only the FINAL segment can ever be
// killed, when the original under-estimated, and it has no follow-on).
// Multi-partition runs use it to carve disjoint Config.FirstSegmentID
// ranges.
func SegmentIDBudget(workload []*job.Job, maxRuntime int64) int64 {
	if maxRuntime <= 0 {
		return 0
	}
	var n int64
	for _, j := range workload {
		if j.Runtime > maxRuntime {
			n += (j.Runtime + maxRuntime - 1) / maxRuntime
		}
	}
	return n
}
