package sim

import (
	"strings"
	"testing"

	"fairsched/internal/job"
)

// Failure-injection tests: broken policies must be detected, not silently
// tolerated.

// lazyPolicy never starts anything.
type lazyPolicy struct{ queue []*job.Job }

func (p *lazyPolicy) Name() string                 { return "lazy" }
func (p *lazyPolicy) Reset(Env)                    { p.queue = nil }
func (p *lazyPolicy) Arrive(_ Env, j *job.Job)     { p.queue = append(p.queue, j) }
func (p *lazyPolicy) Complete(Env, *job.Job)       {}
func (p *lazyPolicy) Wake(Env)                     {}
func (p *lazyPolicy) NextWake(int64) (int64, bool) { return 0, false }
func (p *lazyPolicy) Queued() []*job.Job           { return p.queue }

func TestSimulatorDetectsLostJobs(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}}
	_, err := New(Config{SystemSize: 4}, &lazyPolicy{}).Run(jobs)
	if err == nil || !strings.Contains(err.Error(), "never completed") {
		t.Fatalf("lost job not detected: %v", err)
	}
}

// doubleStarter starts the same job twice.
type doubleStarter struct {
	greedy
	err error
}

func (p *doubleStarter) Arrive(env Env, j *job.Job) {
	if err := env.Start(j); err != nil {
		p.err = err
		return
	}
	p.err = env.Start(j) // must fail
}

func TestStartRejectsDoubleStart(t *testing.T) {
	pol := &doubleStarter{}
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}}
	if _, err := New(Config{SystemSize: 4}, pol).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if pol.err == nil || !strings.Contains(pol.err.Error(), "already started") {
		t.Fatalf("double start not rejected: %v", pol.err)
	}
}

// overCommitter starts jobs beyond the free capacity.
type overCommitter struct {
	greedy
	err error
}

func (p *overCommitter) Arrive(env Env, j *job.Job) {
	if err := env.Start(j); err != nil {
		if p.err == nil {
			p.err = err
		}
		// Keep the job queued; the embedded greedy retries it on the next
		// completion, so the run still finishes.
		p.queue = append(p.queue, j)
	}
}

func TestStartRejectsOvercommit(t *testing.T) {
	pol := &overCommitter{}
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 1000, Nodes: 4},
		{ID: 2, User: 2, Submit: 1, Runtime: 10, Estimate: 10, Nodes: 4},
	}
	res, err := New(Config{SystemSize: 4}, pol).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if pol.err == nil || !strings.Contains(pol.err.Error(), "nodes") {
		t.Fatalf("overcommit not rejected: %v", pol.err)
	}
	// The rejected job recovered via the retry at job 1's completion.
	if got := res.Records[1].Start; got != 1000 {
		t.Fatalf("job 2 started at %d, want 1000", got)
	}
}

// foreignStarter starts a job the simulator never saw.
type foreignStarter struct {
	greedy
	err error
}

func (p *foreignStarter) Arrive(env Env, j *job.Job) {
	p.err = env.Start(&job.Job{ID: 999, User: 1, Runtime: 10, Estimate: 10, Nodes: 1})
	p.greedy.Arrive(env, j)
}

func TestStartRejectsUnknownJob(t *testing.T) {
	pol := &foreignStarter{}
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}}
	if _, err := New(Config{SystemSize: 4}, pol).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if pol.err == nil || !strings.Contains(pol.err.Error(), "never arrived") {
		t.Fatalf("unknown job not rejected: %v", pol.err)
	}
}

// queueLiar reports a started job as still queued; the validator catches it.
type queueLiar struct {
	greedy
	started []*job.Job
}

func (p *queueLiar) Arrive(env Env, j *job.Job) {
	p.greedy.Arrive(env, j)
	p.started = append(p.started, j)
}
func (p *queueLiar) Queued() []*job.Job { return p.started }

func TestValidatorCatchesQueueLies(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}}
	_, err := New(Config{SystemSize: 4, Validate: true}, &queueLiar{}).Run(jobs)
	if err == nil || !strings.Contains(err.Error(), "already started") {
		t.Fatalf("queue lie not detected: %v", err)
	}
}
