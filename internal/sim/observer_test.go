package sim

import (
	"testing"

	"fairsched/internal/job"
)

// recordingObserver captures the callback sequence and interval coverage.
type recordingObserver struct {
	BaseObserver
	events    []string
	intervals [][2]int64
	doneSeen  bool
}

func (o *recordingObserver) JobArrived(_ Env, j *job.Job, _ []*job.Job) {
	o.events = append(o.events, "arrive")
}
func (o *recordingObserver) JobStarted(_ Env, j *job.Job) {
	o.events = append(o.events, "start")
}
func (o *recordingObserver) JobCompleted(_ Env, j *job.Job, _ int64) {
	o.events = append(o.events, "complete")
}
func (o *recordingObserver) Interval(from, to int64, _, _ int) {
	o.intervals = append(o.intervals, [2]int64{from, to})
}
func (o *recordingObserver) Done(Env) { o.doneSeen = true }

func TestObserverCallbackSequence(t *testing.T) {
	obs := &recordingObserver{}
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
		{ID: 2, User: 2, Submit: 50, Runtime: 100, Estimate: 100, Nodes: 4},
	}
	if _, err := New(Config{SystemSize: 4, Validate: true}, &greedy{}, obs).Run(jobs); err != nil {
		t.Fatal(err)
	}
	want := []string{"arrive", "start", "arrive", "complete", "start", "complete"}
	if len(obs.events) != len(want) {
		t.Fatalf("events %v, want %v", obs.events, want)
	}
	for i := range want {
		if obs.events[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (%v)", i, obs.events[i], want[i], obs.events)
		}
	}
	if !obs.doneSeen {
		t.Fatal("Done not called")
	}
}

func TestObserverIntervalsPartitionTime(t *testing.T) {
	obs := &recordingObserver{}
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 10, Runtime: 100, Estimate: 200, Nodes: 4},
		{ID: 2, User: 2, Submit: 35, Runtime: 50, Estimate: 60, Nodes: 4},
		{ID: 3, User: 3, Submit: 200, Runtime: 10, Estimate: 10, Nodes: 8},
	}
	if _, err := New(Config{SystemSize: 8, Validate: true}, &greedy{}, obs).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if len(obs.intervals) == 0 {
		t.Fatal("no intervals observed")
	}
	prevEnd := obs.intervals[0][0]
	for i, iv := range obs.intervals {
		if iv[0] != prevEnd {
			t.Fatalf("interval %d starts at %d, previous ended at %d (gap or overlap)",
				i, iv[0], prevEnd)
		}
		if iv[1] <= iv[0] {
			t.Fatalf("interval %d empty or inverted: %v", i, iv)
		}
		prevEnd = iv[1]
	}
	// Coverage ends at the last completion.
	if prevEnd != 210 {
		t.Fatalf("intervals end at %d, want 210", prevEnd)
	}
}

func TestCompletionsBatchBeforePolicySeesThem(t *testing.T) {
	// Two jobs complete at the same instant; the policy's Complete callback
	// must observe both gone from Running (the batch released first).
	probe := &batchProbe{}
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 2},
		{ID: 2, User: 2, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 2},
		{ID: 3, User: 3, Submit: 10, Runtime: 10, Estimate: 10, Nodes: 8},
	}
	if _, err := New(Config{SystemSize: 8, Validate: true}, probe).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if !probe.sawEmptyRunning {
		t.Fatal("policy.Complete never observed the fully-released batch")
	}
}

// batchProbe is a greedy policy that records whether, during some Complete
// callback, all simultaneous completions had already released their nodes.
type batchProbe struct {
	greedy
	sawEmptyRunning bool
}

func (p *batchProbe) Complete(env Env, j *job.Job) {
	if len(env.Running()) == 0 {
		p.sawEmptyRunning = true
	}
	p.greedy.Complete(env, j)
}
