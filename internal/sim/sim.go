// Package sim implements the event-based cluster simulator the study runs
// on: a space-shared machine of N identical nodes, non-preemptive jobs,
// dynamically arriving work, pluggable scheduling policies, fairshare usage
// accounting, optional maximum-runtime job splitting (checkpoint/restart
// chains) and observer hooks for metrics and fairness engines.
//
// Scheduling events are job arrivals, job completions and policy wake-ups
// (starvation-queue promotion instants, fairshare decay boundaries). The
// simulator is fully deterministic: same inputs, same run.
package sim

import (
	"fmt"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/profile"
)

// KillPolicy selects what happens when a job reaches its wall-clock limit
// while still running. The paper's system "kills jobs after the user
// supplied wall clock limit (WCL) is reached. However, if no other job
// requires the processors, the job is allowed to continue running". The
// study itself replays trace runtimes, so KillNever is the default.
type KillPolicy int

const (
	// KillNever runs every job for its full actual runtime (trace replay).
	KillNever KillPolicy = iota
	// KillWhenNeeded terminates an over-limit job as soon as any job is
	// queued (the real CPlant behaviour, provided as an extension).
	KillWhenNeeded
	// KillAlways terminates every job at min(runtime, estimate).
	KillAlways
)

func (k KillPolicy) String() string {
	switch k {
	case KillNever:
		return "never"
	case KillWhenNeeded:
		return "when-needed"
	case KillAlways:
		return "always"
	default:
		return fmt.Sprintf("KillPolicy(%d)", int(k))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// SystemSize is the number of compute nodes (default 1000, the
	// study's calibrated substitute for CPlant/Ross — DESIGN.md §5).
	SystemSize int
	// Fairshare configures the decaying-usage priority tracker.
	Fairshare fairshare.Config
	// FairshareEpoch aligns the tracker's decay boundaries: they fire at
	// FairshareEpoch + k·DecayInterval in simulation time. Real schedulers
	// decay at fixed wall-clock instants, so for an SWF trace this is
	// fairshare.EpochFor(header.UnixStartTime, interval); 0 (the default)
	// aligns boundaries to the trace origin.
	FairshareEpoch int64
	// MaxRuntime, when positive, enforces the paper's maximum-runtime
	// policy: estimates are capped to it and jobs running longer are split
	// into segments of at most MaxRuntime seconds (see SplitMode).
	MaxRuntime int64
	// Split selects how segments are submitted (default SplitUpfront).
	Split SplitMode
	// Kill selects the wall-clock-limit kill behaviour (default KillNever).
	Kill KillPolicy
	// Validate enables per-event invariant checking (used in tests; cheap
	// enough to leave on for small runs).
	Validate bool
	// Preemptable enables the checkpoint-preemption path (Env implementors
	// expose it via the Preempter extension): policies may terminate a
	// running job at the current instant and have its remainder resubmitted
	// as a chained segment. The simulator then runs on private clones of
	// the workload jobs, because preemption extends a job's chain metadata
	// in place; non-preemptable runs share workload slices untouched.
	Preemptable bool
	// FirstSegmentID, when positive, raises the floor for the ids allocated
	// to split segments (normally workload max + 1). Multi-partition runs
	// hand each partition's loop a disjoint range (see SegmentIDBudget) so
	// merged records keep globally unique ids.
	FirstSegmentID job.ID
}

func (c Config) withDefaults() Config {
	if c.SystemSize <= 0 {
		c.SystemSize = 1000
	}
	return c
}

// RunningJob is a job that has been started and not yet completed.
type RunningJob struct {
	Job   *job.Job
	Start int64
}

// EstimatedCompletion returns when the scheduler should expect the job to
// finish: start + estimate while the job is within its wall-clock limit.
// Once a job overruns, the expectation backs off exponentially (start +
// estimate*2^k for the smallest k putting it in the future). A naive "now +
// epsilon" clamp would pin every reservation built on the job's nodes to the
// immediate future for the whole overrun, freezing backfill behind it; the
// doubling keeps the promised release plausibly ahead without ever drifting
// more than a factor of two past the true remaining overrun.
func (r RunningJob) EstimatedCompletion(now int64) int64 {
	est := r.Job.Estimate
	if est < 1 {
		est = 1
	}
	ec := r.Start + est
	for ec <= now {
		est *= 2
		ec = r.Start + est
	}
	return ec
}

// Env is the interface policies and observers use to inspect and act on the
// simulated system. The simulator itself implements it.
type Env interface {
	// Now returns the current simulation time.
	Now() int64
	// SystemSize returns the total node count.
	SystemSize() int
	// FreeNodes returns the currently idle node count.
	FreeNodes() int
	// Running returns the running jobs in start order (then job id). The
	// returned slice must not be mutated.
	Running() []RunningJob
	// Fairshare returns the usage tracker (settled up to Now).
	Fairshare() *fairshare.Tracker
	// Availability returns the free-capacity timeline implied by the running
	// jobs: free nodes from Now onwards, with each running job occupying its
	// nodes until its estimated completion (overruns backed off as in
	// RunningJob.EstimatedCompletion). The profile is built at most once per
	// scheduling pass and shared by every policy component — reservation
	// searches, backfill feasibility checks, starvation-queue reservations —
	// so callers MUST NOT mutate it; copy it (profile.CopyFrom) before
	// occupying. The returned profile is invalidated by the next Start call
	// and by the clock advancing: re-fetch it rather than retaining it across
	// starts.
	Availability() *profile.Profile
	// Start launches a queued job immediately. It fails if the job does not
	// fit in the free nodes or was already started. Starting a job
	// invalidates the Availability profile.
	Start(j *job.Job) error
}

// Preempter is the optional Env extension preemption-capable environments
// provide (the Simulator implements it when Config.Preemptable is set).
// Policies discover it by type assertion — env.(Preempter) — so existing
// Env implementations stay valid.
type Preempter interface {
	// CanPreempt reports whether j can be checkpointed right now: the run
	// is preemptable and j is running with at least one second of realized
	// service and one second of scheduled service left. Policies use it to
	// select victim sets that Preempt will accept in full, so a multi-victim
	// preemption never fails half-way through.
	CanPreempt(j *job.Job) bool
	// Preempt checkpoints a running job at the current instant: the job is
	// terminated (its record finalized as preempted), its remainder is
	// resubmitted as a chained segment at the same instant, and chain
	// metadata (Parent/Segment/Segments/ChainRuntime) ties the pieces into
	// one logical job for the fairness and SLO accounting. Only valid from
	// inside a policy scheduling callback.
	Preempt(j *job.Job) error
}

// Policy is a scheduling policy under test. The simulator calls exactly one
// of Arrive/Complete/Wake per scheduling event; the policy reacts by calling
// Env.Start for every job it launches.
type Policy interface {
	// Name identifies the policy in results (e.g. "cplant24.nomax.all").
	Name() string
	// Reset prepares the policy for a fresh run on the given environment.
	Reset(env Env)
	// Arrive handles a job submission (the job is now queued with the
	// policy until it calls env.Start).
	Arrive(env Env, j *job.Job)
	// Complete handles a job completion (a scheduling event).
	Complete(env Env, j *job.Job)
	// Wake handles a timed scheduling event requested via NextWake.
	Wake(env Env)
	// NextWake returns the next instant strictly after now at which the
	// policy wants a Wake (e.g. a starvation-queue promotion time).
	NextWake(now int64) (int64, bool)
	// Queued returns all jobs currently queued (any internal queue), in a
	// deterministic order. The slice must not be retained by callers.
	Queued() []*job.Job
}

// Observer receives simulation lifecycle callbacks. Metrics collectors and
// fairness engines implement it.
type Observer interface {
	// JobArrived fires when a job is submitted, before the policy sees it.
	// queued is the policy's queue at that instant (not yet containing j).
	JobArrived(env Env, j *job.Job, queued []*job.Job)
	// JobStarted fires when a job begins execution.
	JobStarted(env Env, j *job.Job)
	// JobCompleted fires when a job finishes; start is its start time.
	JobCompleted(env Env, j *job.Job, start int64)
	// Interval fires for every maximal time span [from, to) during which
	// the system state was constant, with the nodes in use and the total
	// nodes requested by queued jobs during the span.
	Interval(from, to int64, usedNodes, queuedNodes int)
	// Done fires after the last event.
	Done(env Env)
}

// BaseObserver is a no-op Observer for embedding.
type BaseObserver struct{}

// JobArrived implements Observer.
func (BaseObserver) JobArrived(Env, *job.Job, []*job.Job) {}

// JobStarted implements Observer.
func (BaseObserver) JobStarted(Env, *job.Job) {}

// JobCompleted implements Observer.
func (BaseObserver) JobCompleted(Env, *job.Job, int64) {}

// Interval implements Observer.
func (BaseObserver) Interval(int64, int64, int, int) {}

// Done implements Observer.
func (BaseObserver) Done(Env) {}

// Record is the outcome of one job (or segment) in a run.
type Record struct {
	Job      *job.Job
	Submit   int64
	Start    int64
	Complete int64
	Started  bool
	Finished bool
	// Killed marks a job terminated at its wall-clock limit by a kill
	// policy; Complete then reflects the truncated runtime.
	Killed bool
	// Preempted marks a job checkpointed by a preemptive policy; Complete
	// reflects the service realized before the checkpoint, and the
	// remainder re-entered the queue as a chained segment with its own
	// record.
	Preempted bool
}

// Wait returns the queuing delay.
func (r *Record) Wait() int64 { return r.Start - r.Submit }

// Turnaround returns completion - arrival (Equation 1's per-job term).
func (r *Record) Turnaround() int64 { return r.Complete - r.Submit }

// Result is the outcome of a full simulation run.
type Result struct {
	Policy     string
	SystemSize int
	// Records lists every job the scheduler saw (segments included when
	// max-runtime splitting is active), sorted by submit time then id.
	Records []*Record
	// Makespan is max completion - min start (Equation 3).
	Makespan int64
	// FirstStart and LastCompletion bound the schedule.
	FirstStart     int64
	LastCompletion int64
	// Events counts processed scheduling events (diagnostics).
	Events int64
}
