package sim

import (
	"testing"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
)

// The fairshare epoch shifts decay boundaries: a trace that starts mid-day
// must see its first decay at the next wall-clock boundary, not a full
// interval in. Regression for the hardcoded epoch 0 in Run.
func TestFairshareEpochShiftsDecayBoundaries(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 7, Submit: 0, Runtime: 1000, Estimate: 1000, Nodes: 4},
	}
	fsCfg := fairshare.Config{DecayFactor: 0.5, DecayInterval: 1000}

	// Epoch 0: the run ends exactly on the boundary at t=1000; the full
	// 4000 proc-seconds decay once.
	s := New(Config{SystemSize: 8, Fairshare: fsCfg, Validate: true}, &greedy{})
	if _, err := s.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if got := s.Fairshare().Usage(7); got != 2000 {
		t.Fatalf("epoch 0: usage = %v, want 2000", got)
	}

	// Epoch -400 (trace began 400s after a wall-clock boundary): boundary
	// at t=600 decays the first 2400 to 1200, then 1600 more accrue.
	s = New(Config{SystemSize: 8, Fairshare: fsCfg, FairshareEpoch: -400, Validate: true}, &greedy{})
	if _, err := s.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if got := s.Fairshare().Usage(7); got != 2800 {
		t.Fatalf("epoch -400: usage = %v, want 2800", got)
	}

	// A positive epoch keeps its documented boundary lattice (epoch +
	// k·interval): +600 is congruent to -400, so the run behaves exactly
	// like the epoch -400 case above.
	s = New(Config{SystemSize: 8, Fairshare: fsCfg, FairshareEpoch: 600, Validate: true}, &greedy{})
	if _, err := s.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if got := s.Fairshare().Usage(7); got != 2800 {
		t.Fatalf("epoch +600: usage = %v, want 2800 (same phase as -400)", got)
	}
	// A whole-interval epoch is phase 0.
	s = New(Config{SystemSize: 8, Fairshare: fsCfg, FairshareEpoch: 3000, Validate: true}, &greedy{})
	if _, err := s.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if got := s.Fairshare().Usage(7); got != 2000 {
		t.Fatalf("epoch +3000: usage = %v, want 2000 (phase 0)", got)
	}
}

func TestEpochFor(t *testing.T) {
	cases := []struct {
		unixStart, interval, want int64
	}{
		{0, 1000, 0},
		{-5, 1000, 0},
		{600, 1000, -600},
		{1038700800, 0, -(1038700800 % 86400)}, // default 24h interval
		{86400, 86400, 0},
	}
	for _, c := range cases {
		if got := fairshare.EpochFor(c.unixStart, c.interval); got != c.want {
			t.Errorf("EpochFor(%d, %d) = %d, want %d", c.unixStart, c.interval, got, c.want)
		}
	}
}
