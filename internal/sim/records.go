package sim

import "fairsched/internal/job"

// recordIndex maps job ids to their records. Workload id spaces are dense
// in practice (SWF job numbers and the synthetic generator both count up
// from 1, and split segments allocate sequentially above the workload
// maximum), so the index is a flat slice keyed by id — the per-event map
// traffic of the old records map (every Start and release did a hash
// lookup) becomes an array index. A map fallback covers adversarial
// id spaces (library callers are free to use any positive int64), chosen
// once per run from the workload's maximum id.
type recordIndex struct {
	dense  []*Record
	sparse map[job.ID]*Record
}

// newRecordIndex sizes the index for a workload of n jobs with ids up to
// maxID. The dense layout is used when the id space wastes at most a small
// constant factor over the workload size; headroom for split-segment ids
// (allocated sequentially above maxID) is reserved up front.
func newRecordIndex(n int, maxID job.ID, forceSparse bool) recordIndex {
	if !forceSparse && int64(maxID) <= 2*int64(n)+64 {
		return recordIndex{dense: make([]*Record, int(maxID)+1, int(maxID)+1+n/4+1)}
	}
	return recordIndex{sparse: make(map[job.ID]*Record, n)}
}

// get returns the record for id, nil when the id was never put.
func (x *recordIndex) get(id job.ID) *Record {
	if x.sparse != nil {
		return x.sparse[id]
	}
	if i := int(id); i >= 0 && i < len(x.dense) {
		return x.dense[i]
	}
	return nil
}

// put stores the record for id, growing the dense slice when a split
// segment's id lands past the current end.
func (x *recordIndex) put(id job.ID, rec *Record) {
	if x.sparse != nil {
		x.sparse[id] = rec
		return
	}
	i := int(id)
	for i >= len(x.dense) {
		x.dense = append(x.dense, nil)
	}
	x.dense[i] = rec
}
