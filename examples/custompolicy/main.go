// Custompolicy: implement a new scheduling policy against the public API
// and evaluate it with the paper's hybrid fairness metric.
//
// The policy here is "widest-first backfilling": the queue is ordered by
// descending node count (wide jobs first, attacking the paper's wide-job
// starvation problem head-on) with EASY-style head reservations. The
// example runs it next to the Sandia baseline and reports whether brute
// width priority actually helps fairness.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"
	"sort"

	"fairsched"
)

// widestFirst is a sim.Policy: a single queue ordered by width (then
// arrival), the head holds an aggressive reservation, everything else may
// backfill if it does not delay the head.
type widestFirst struct {
	queue []*fairsched.Job
}

func (p *widestFirst) Name() string                 { return "widest-first" }
func (p *widestFirst) Reset(fairsched.Env)          { p.queue = nil }
func (p *widestFirst) NextWake(int64) (int64, bool) { return 0, false }
func (p *widestFirst) Queued() []*fairsched.Job     { return p.queue }

func (p *widestFirst) Arrive(env fairsched.Env, j *fairsched.Job) {
	p.queue = append(p.queue, j)
	p.schedule(env)
}
func (p *widestFirst) Complete(env fairsched.Env, _ *fairsched.Job) { p.schedule(env) }
func (p *widestFirst) Wake(env fairsched.Env)                       { p.schedule(env) }

func (p *widestFirst) schedule(env fairsched.Env) {
	sort.SliceStable(p.queue, func(i, k int) bool {
		if p.queue[i].Nodes != p.queue[k].Nodes {
			return p.queue[i].Nodes > p.queue[k].Nodes // widest first
		}
		return p.queue[i].Submit < p.queue[k].Submit
	})
	// Start heads while they fit.
	for len(p.queue) > 0 && p.queue[0].Nodes <= env.FreeNodes() {
		if err := env.Start(p.queue[0]); err != nil {
			panic(err)
		}
		p.queue = p.queue[1:]
	}
	if len(p.queue) == 0 {
		return
	}
	// Aggressive reservation for the blocked head from running jobs'
	// estimated completions.
	head := p.queue[0]
	resAt, shadow := reservation(env, head.Nodes)
	kept := p.queue[:1]
	for _, c := range p.queue[1:] {
		fits := c.Nodes <= env.FreeNodes()
		safe := env.Now()+c.Estimate <= resAt || c.Nodes <= shadow
		if fits && safe {
			if env.Now()+c.Estimate > resAt {
				shadow -= c.Nodes
			}
			if err := env.Start(c); err != nil {
				panic(err)
			}
			continue
		}
		kept = append(kept, c)
	}
	p.queue = kept
}

// reservation computes the earliest time `nodes` nodes free up, and the
// spare capacity at that instant.
func reservation(env fairsched.Env, nodes int) (int64, int) {
	free := env.FreeNodes()
	if nodes <= free {
		return env.Now(), free - nodes
	}
	type rel struct {
		t int64
		n int
	}
	var rels []rel
	for _, r := range env.Running() {
		rels = append(rels, rel{r.EstimatedCompletion(env.Now()), r.Job.Nodes})
	}
	sort.Slice(rels, func(i, k int) bool { return rels[i].t < rels[k].t })
	cum := free
	for i, r := range rels {
		cum += r.n
		if i+1 < len(rels) && rels[i+1].t == r.t {
			continue
		}
		if cum >= nodes {
			return r.t, cum - nodes
		}
	}
	return env.Now(), env.SystemSize() - nodes
}

func main() {
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{
		Seed: 42, Scale: 0.25, SystemSize: 250,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s %16s\n", "policy", "% unfair jobs", "avg miss", "avg turnaround")

	// The baseline through the study driver.
	spec, _ := fairsched.PolicyByName("cplant24.nomax.all")
	base, err := fairsched.Run(fairsched.StudyConfig{SystemSize: 250}, spec, jobs)
	if err != nil {
		log.Fatal(err)
	}
	report(base.Summary.Policy, base)

	// The custom policy through the raw simulator with the same fairness
	// engine attached.
	fst := fairsched.NewHybridFST()
	s := fairsched.NewSimulator(fairsched.SimConfig{SystemSize: 250}, &widestFirst{}, fst)
	res, err := s.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	unfair, miss, tat := 0, 0.0, 0.0
	for _, r := range res.Records {
		tat += float64(r.Turnaround())
		if v, ok := fst.FST(r.Job.ID); ok && r.Start > v {
			unfair++
			miss += float64(r.Start - v)
		}
	}
	n := float64(len(res.Records))
	fmt.Printf("%-22s %13.2f%% %13.0fs %15.0fs\n",
		"widest-first", 100*float64(unfair)/n, miss/n, tat/n)

	fmt.Println("\nWidth priority alone trades narrow-job service for wide-job")
	fmt.Println("service; the paper's fairshare-based policies balance both.")
}

func report(name string, run *fairsched.StudyRun) {
	s := run.Summary
	fmt.Printf("%-22s %13.2f%% %13.0fs %15.0fs\n",
		name, s.PercentUnfair, s.AvgMissTime, s.AvgTurnaround)
}
