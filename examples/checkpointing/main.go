// Checkpointing: the paper's §5.1 scenario — very long jobs are broken into
// 72-hour chunks (users already checkpoint on CPlant, so the limit costs
// little) giving the scheduler coarse-grained preemption. This example
// builds a workload dominated by multi-day jobs plus a stream of wide
// latecomers, then shows how each split-submission model (upfront,
// staggered, chained restarts) changes the wide jobs' fate under the
// baseline scheduler.
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"

	"fairsched"
)

func main() {
	const (
		size = 128
		hour = int64(3600)
		day  = 24 * hour
	)
	// Hand-built workload: four 10-day 32-node jobs occupy the machine;
	// every day a 96-node job arrives and must find room.
	var jobs []*fairsched.Job
	id := fairsched.JobID(1)
	for i := 0; i < 4; i++ {
		jobs = append(jobs, &fairsched.Job{
			ID: id, User: 1 + i, Submit: int64(i) * hour,
			Runtime: 10 * day, Estimate: 12 * day, Nodes: 32,
		})
		id++
	}
	for d := 1; d <= 7; d++ {
		jobs = append(jobs, &fairsched.Job{
			ID: id, User: 10 + d, Submit: int64(d) * day,
			Runtime: 6 * hour, Estimate: 8 * hour, Nodes: 96,
		})
		id++
	}

	spec, err := fairsched.PolicyByName("cplant24.nomax.all")
	if err != nil {
		log.Fatal(err)
	}
	spec72, err := fairsched.PolicyByName("cplant24.72max.all")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %18s %18s\n", "configuration", "wide avg wait", "wide max wait")
	show := func(label string, cfg fairsched.StudyConfig, s fairsched.PolicySpec) {
		run, err := fairsched.Run(cfg, s, jobs)
		if err != nil {
			log.Fatal(err)
		}
		var sum, max int64
		n := 0
		for _, r := range run.Result.Records {
			if r.Job.Nodes != 96 {
				continue
			}
			w := r.Wait()
			sum += w
			if w > max {
				max = w
			}
			n++
		}
		fmt.Printf("%-28s %17.1fh %17.1fh\n", label,
			float64(sum)/float64(n)/3600, float64(max)/3600)
	}

	base := fairsched.StudyConfig{SystemSize: size}
	show("no runtime limit", base, spec)
	for _, mode := range []fairsched.SplitMode{
		fairsched.SplitUpfront, fairsched.SplitStaggered, fairsched.SplitChained,
	} {
		cfg := base
		cfg.Split = mode
		show(fmt.Sprintf("72h limit, %v chunks", mode), cfg, spec72)
	}

	fmt.Println("\nWithout limits the 96-node jobs wait for the 10-day wall to end")
	fmt.Println("(only the starvation queue eventually rescues them). With 72h")
	fmt.Println("chunks, every chunk boundary is a chance for the wide jobs to")
	fmt.Println("start — the paper's coarse-grained preemption.")
}
