// Quickstart: generate a scaled-down synthetic CPlant/Ross workload, run
// the baseline Sandia scheduler and the paper's best modification
// (conservative backfilling with 72h runtime limits), and compare the
// fairness and performance metrics side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fairsched"
)

func main() {
	// A quarter-scale trace on a proportionally smaller machine keeps this
	// example under a second; drop Scale/SystemSize overrides to run the
	// full study.
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{
		Seed:       42,
		Scale:      0.25,
		SystemSize: 250,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs over 33 weeks\n\n", len(jobs))

	cfg := fairsched.StudyConfig{SystemSize: 250}
	fmt.Printf("%-22s %14s %14s %16s %10s\n",
		"policy", "% unfair jobs", "avg miss", "avg turnaround", "LOC")
	for _, name := range []string{"cplant24.nomax.all", "cons.72max"} {
		spec, err := fairsched.PolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		run, err := fairsched.Run(cfg, spec, jobs)
		if err != nil {
			log.Fatal(err)
		}
		s := run.Summary
		fmt.Printf("%-22s %13.2f%% %13.0fs %15.0fs %9.2f%%\n",
			name, s.PercentUnfair, s.AvgMissTime, s.AvgTurnaround,
			100*s.LossOfCapacity)
	}
	fmt.Println("\nThe baseline lets narrow jobs leapfrog wide 'deserving' jobs;")
	fmt.Println("conservative backfilling with 72h limits bounds every wait and")
	fmt.Println("lets long jobs release their nodes for coarse-grained preemption.")
}
