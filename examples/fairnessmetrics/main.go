// Fairnessmetrics: compare the paper's hybrid fairshare FST metric against
// the two families it hybridizes — the CONS-P fair start time and the
// Sabin/Sadayappan no-later-arrivals fair start time — plus the resource
// equality metric, all on one small workload under the baseline scheduler
// (paper §4).
//
//	go run ./examples/fairnessmetrics
package main

import (
	"fmt"
	"log"

	"fairsched"
	"fairsched/internal/core"
	"fairsched/internal/fairness"
)

func main() {
	// Small workload: the Sabin metric re-simulates once per job.
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{
		Seed: 42, Scale: 0.03, SystemSize: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := fairsched.StudyConfig{SystemSize: 100, Equality: true}
	spec, err := fairsched.PolicyByName("cplant24.nomax.all")
	if err != nil {
		log.Fatal(err)
	}
	run, err := fairsched.Run(cfg, spec, jobs)
	if err != nil {
		log.Fatal(err)
	}

	// The hybrid metric came attached to the run.
	hybrid := fairness.Measure(run.Result.Records, run.FST)

	// CONS-P: conservative backfilling with perfect estimates, FCFS.
	consP, err := fairness.ConsP(jobs, 100)
	if err != nil {
		log.Fatal(err)
	}
	consPU := fairness.Measure(run.Result.Records, consP)

	// Sabin: the same policy re-run with arrivals truncated per job.
	sabin, err := fairness.Sabin(core.Starts(cfg, spec), jobs)
	if err != nil {
		log.Fatal(err)
	}
	sabinU := fairness.Measure(run.Result.Records, sabin)

	fmt.Printf("baseline policy over %d jobs on 100 nodes\n\n", len(jobs))
	fmt.Printf("%-28s %14s %14s\n", "fairness metric", "% unfair jobs", "avg miss time")
	fmt.Printf("%-28s %13.2f%% %13.0fs\n", "hybrid fairshare FST (§4.1)", hybrid.PercentUnfair(), hybrid.AvgMissTime())
	fmt.Printf("%-28s %13.2f%% %13.0fs\n", "CONS-P FST", consPU.PercentUnfair(), consPU.AvgMissTime())
	fmt.Printf("%-28s %13.2f%% %13.0fs\n", "Sabin no-later-arrivals FST", sabinU.PercentUnfair(), sabinU.AvgMissTime())
	if run.Equality != nil {
		fmt.Printf("%-28s %17s %10.0f\n", "resource equality (§4)", "deficit/job:",
			run.Equality.AveragePerJob())
	}

	fmt.Println("\nCONS-P judges against an idealized packed schedule (its own")
	fmt.Println("performance leaks into the metric); the Sabin FST depends on the")
	fmt.Println("scheduler under test. The hybrid metric seeds a fairshare list")
	fmt.Println("schedule with the real system state at each arrival, keeping the")
	fmt.Println("reference discipline fixed without blessing a gold schedule.")
}
