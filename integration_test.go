package fairsched_test

import (
	"bytes"
	"testing"

	"fairsched"
	"fairsched/internal/core"
	"fairsched/internal/experiments"
	"fairsched/internal/workload"
)

// TestIntegrationHeadlineClaims runs the nine-policy study at half scale
// and asserts the paper's headline conclusions — the ones EXPERIMENTS.md
// reports as robust across seeds. Skipped under -short (about 2 s).
func TestIntegrationHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("half-scale integration study")
	}
	jobs, err := workload.Generate(workload.Config{Seed: 42, Scale: 0.5, SystemSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.RunOn(core.StudyConfig{SystemSize: 500}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	base := res.Baseline()
	get := func(key string) *fairsched.Summary {
		s, ok := res.ByKey[key]
		if !ok {
			t.Fatalf("missing %s", key)
		}
		return s
	}

	// Conservative dynamic has the fewest unfair jobs of all nine.
	dyn := get("consdyn.nomax")
	for key, s := range res.ByKey {
		if key != "consdyn.nomax" && s.PercentUnfair < dyn.PercentUnfair {
			t.Errorf("%s has fewer unfair jobs (%.2f%%) than consdyn.nomax (%.2f%%)",
				key, s.PercentUnfair, dyn.PercentUnfair)
		}
	}
	// ... but severe misses, worse than the baseline.
	if dyn.AvgMissTime <= base.AvgMissTime {
		t.Errorf("consdyn.nomax avg miss %.0f should exceed baseline %.0f",
			dyn.AvgMissTime, base.AvgMissTime)
	}
	// 72h limits improve turnaround and LOC for the cplant family. (The
	// full set of Results-section claims, including the miss-time and
	// combined-policy orderings, holds at full scale — see EXPERIMENTS.md;
	// this half-scale test asserts only the scale-robust subset.)
	max72 := get("cplant24.72max.all")
	if max72.AvgTurnaround >= base.AvgTurnaround {
		t.Errorf("72max turnaround should beat the baseline")
	}
	if max72.LossOfCapacity >= base.LossOfCapacity {
		t.Errorf("72max LOC should beat the baseline")
	}
	// Baseline misses concentrate in the wide categories.
	if !(base.AvgMissByWidth[9] > base.AvgMissByWidth[4] &&
		base.AvgMissByWidth[8] > base.AvgMissByWidth[3]) {
		t.Errorf("baseline wide-job misses should dominate: %v", base.AvgMissByWidth)
	}
	// Every policy conserves the workload.
	for key, s := range res.ByKey {
		if s.Utilization <= 0 || s.Utilization > 1 {
			t.Errorf("%s utilization %v out of range", key, s.Utilization)
		}
	}
}

// TestIntegrationDeterministicSweep verifies that the full pipeline is
// bit-reproducible: two sweeps over the same seed agree on every metric.
func TestIntegrationDeterministicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("two quarter-scale sweeps")
	}
	runOnce := func() map[string][4]float64 {
		jobs, err := workload.Generate(workload.Config{Seed: 9, Scale: 0.1, SystemSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		res, err := experiments.RunOn(core.StudyConfig{SystemSize: 100}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][4]float64{}
		for key, s := range res.ByKey {
			out[key] = [4]float64{s.PercentUnfair, s.AvgMissTime, s.AvgTurnaround, s.LossOfCapacity}
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for key := range a {
		if a[key] != b[key] {
			t.Errorf("%s not deterministic: %v vs %v", key, a[key], b[key])
		}
	}
}

// TestIntegrationSWFPipeline exercises the file-based workflow: generate,
// write SWF, read back, run a policy — the cmd-tool path without the CLIs.
func TestIntegrationSWFPipeline(t *testing.T) {
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{Seed: 3, Scale: 0.05, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fairsched.WriteSWF(&buf, jobs, 100); err != nil {
		t.Fatal(err)
	}
	back, size, err := fairsched.ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := fairsched.PolicyByName("easy")
	runA, err := fairsched.Run(fairsched.StudyConfig{SystemSize: size}, spec, back)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := fairsched.Run(fairsched.StudyConfig{SystemSize: 100}, spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if runA.Summary.AvgTurnaround != runB.Summary.AvgTurnaround {
		t.Fatalf("SWF round trip changed the schedule: %v vs %v",
			runA.Summary.AvgTurnaround, runB.Summary.AvgTurnaround)
	}
}
