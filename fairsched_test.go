package fairsched_test

import (
	"bytes"
	"strings"
	"testing"

	"fairsched"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{
		Seed: 42, Scale: 0.1, SystemSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	spec, err := fairsched.PolicyByName("cplant24.nomax.all")
	if err != nil {
		t.Fatal(err)
	}
	run, err := fairsched.Run(fairsched.StudyConfig{SystemSize: 100}, spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if run.Summary.Jobs != len(jobs) {
		t.Fatalf("summary jobs %d != %d", run.Summary.Jobs, len(jobs))
	}
}

func TestPublicAPIPolicyLists(t *testing.T) {
	if len(fairsched.AllPolicies()) != 9 {
		t.Fatal("AllPolicies should list the paper's nine configurations")
	}
	if len(fairsched.MinorPolicies()) != 5 {
		t.Fatal("MinorPolicies should list five configurations")
	}
	names := fairsched.PolicyNames()
	found := false
	for _, n := range names {
		if n == "consdyn.72max" {
			found = true
		}
	}
	if !found {
		t.Fatalf("consdyn.72max missing from %v", names)
	}
}

func TestPublicAPISWFRoundTrip(t *testing.T) {
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{
		Seed: 1, Scale: 0.02, SystemSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fairsched.WriteSWF(&buf, jobs, 100); err != nil {
		t.Fatal(err)
	}
	back, size, err := fairsched.ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if size != 100 || len(back) != len(jobs) {
		t.Fatalf("round trip: size=%d jobs=%d", size, len(back))
	}
}

func TestPublicAPICustomSimulator(t *testing.T) {
	jobs := []*fairsched.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 4},
	}
	fst := fairsched.NewHybridFST()
	s := fairsched.NewSimulator(fairsched.SimConfig{SystemSize: 8, Validate: true},
		fairsched.NewEASY(), fst)
	res, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatal("records missing")
	}
	if _, ok := fst.FST(1); !ok {
		t.Fatal("fairness engine recorded nothing")
	}
}

func TestPublicAPIExperimentsReport(t *testing.T) {
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{
		Seed: 42, Scale: 0.1, SystemSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fairsched.RunExperiments(fairsched.StudyConfig{SystemSize: 100}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fairsched.WriteReport(&buf, res)
	if !strings.Contains(buf.String(), "FIG14") {
		t.Fatal("report missing figures")
	}
}

func TestPublicAPIHypotheses(t *testing.T) {
	spec, err := fairsched.ParseHypothesis(
		"claim facade: fcfs#avg_wait < fcfs#avg_tat")
	if err != nil {
		t.Fatal(err)
	}
	eval, err := fairsched.RunHypotheses([]fairsched.HypothesisSpec{spec},
		fairsched.HypothesisOptions{
			Source: fairsched.SyntheticSource(fairsched.WorkloadConfig{
				Scale: 0.05, SystemSize: 100,
			}),
			Study: fairsched.StudyConfig{SystemSize: 100},
		})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fairsched.RenderFindings(&buf, eval)
	if !strings.Contains(buf.String(), "facade — CONFIRMED") {
		t.Fatalf("unexpected findings:\n%s", buf.String())
	}
}
