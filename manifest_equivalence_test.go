package fairsched_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairsched"
)

// writeManifestTraces generates three distinct synthetic workloads, writes
// them as SWF files under dir and returns the manifest naming them.
func writeManifestTraces(t testing.TB, dir string) *fairsched.TraceManifest {
	t.Helper()
	m := &fairsched.TraceManifest{Path: filepath.Join(dir, "traces.toml")}
	for i := 1; i <= 3; i++ {
		jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{
			Seed: int64(i), Scale: 0.01, SystemSize: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("trace%d.swf", i))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		werr := fairsched.WriteSWF(f, jobs, 100)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			t.Fatal(werr)
		}
		m.Entries = append(m.Entries, fairsched.TraceManifestEntry{
			Name: fmt.Sprintf("trace%d", i), Path: path,
		})
	}
	return m
}

// The campaign contract, extended to the trace cache: the report over a
// manifest is byte-identical whether each trace is streamed from SWF or
// loaded from the binary cache (cold or warm), at every parallelism.
func TestManifestCampaignByteIdentity(t *testing.T) {
	dir := t.TempDir()
	m := writeManifestTraces(t, dir)
	specs := []fairsched.PolicySpec{
		mustPolicy(t, "cons.nomax"),
		mustPolicy(t, "consdyn.nomax"),
	}
	render := func(sources []fairsched.ScenarioSource, parallel int) string {
		cells, err := fairsched.Campaign{
			Sources:   sources,
			Scenarios: []fairsched.Scenario{fairsched.BuiltinScenarios()[0]},
			Seeds:     []int64{7},
			Specs:     specs,
			Parallel:  parallel,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		fairsched.RenderCampaign(&b, cells)
		return b.String()
	}

	// The reference: manifest sources with caching disabled stream each SWF
	// through the scanner, exactly like TraceSource.
	ref := render(fairsched.ManifestSources(m, m.Entries, ""), 1)
	if !strings.Contains(ref, "CROSS-TRACE ROBUSTNESS") {
		t.Fatalf("three-trace report lacks the robustness section:\n%s", ref)
	}

	// Cold (first pass builds every cache file), then warm (second pass
	// decodes them), across parallel widths. Fresh sources each pass: a
	// source memoizes its load, so reuse would not touch the cache again.
	cacheDir := filepath.Join(dir, "cache")
	for _, parallel := range []int{1, 2, 8} {
		if got := render(fairsched.ManifestSources(m, m.Entries, cacheDir), parallel); got != ref {
			t.Fatalf("cached report at parallel=%d differs from the streamed report:\n--- streamed ---\n%s\n--- cached ---\n%s",
				parallel, ref, got)
		}
	}

	// The plain streamed TraceSource path agrees too once its sources carry
	// the manifest names (the name is part of the rendered report).
	var plain []fairsched.ScenarioSource
	for _, e := range m.Entries {
		s := fairsched.TraceSource(e.Path)
		s.Name = e.Name
		plain = append(plain, s)
	}
	if got := render(plain, 1); got != ref {
		t.Fatalf("TraceSource report differs from the manifest report:\n--- manifest ---\n%s\n--- tracesource ---\n%s", ref, got)
	}
}

// BenchmarkCampaignManifest times a whole manifest campaign with every
// cache warm — the steady-state cost of an archive-scale sweep iteration
// (docs/PERFORMANCE.md records the methodology).
func BenchmarkCampaignManifest(b *testing.B) {
	dir := b.TempDir()
	m := writeManifestTraces(b, dir)
	cacheDir := filepath.Join(dir, "cache")
	spec, err := fairsched.PolicyByName("consdyn.nomax")
	if err != nil {
		b.Fatal(err)
	}
	run := func() int {
		cells, err := fairsched.Campaign{
			Sources:   fairsched.ManifestSources(m, m.Entries, cacheDir),
			Scenarios: []fairsched.Scenario{fairsched.BuiltinScenarios()[0]},
			Seeds:     []int64{7},
			Specs:     []fairsched.PolicySpec{spec},
			Parallel:  1,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		return len(cells)
	}
	run() // prime the cache; the timed iterations are all warm
	b.ResetTimer()
	cells := 0
	for i := 0; i < b.N; i++ {
		cells += run()
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "runs/s")
}
