package fairsched_test

import (
	"bytes"
	"strings"
	"testing"

	"fairsched"
)

// The facade's scenario-engine surface: stream a trace, build a campaign
// over built-in scenarios, render the report.
func TestPublicAPICampaignFlow(t *testing.T) {
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{Seed: 5, Scale: 0.02, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through the streaming scanner.
	var buf bytes.Buffer
	if err := fairsched.WriteSWF(&buf, jobs, 100); err != nil {
		t.Fatal(err)
	}
	sc := fairsched.NewSWFScanner(bytes.NewReader(buf.Bytes()))
	streamed := 0
	for sc.Scan() {
		if _, ok := fairsched.ConvertSWFRecord(sc.Record(), fairsched.SWFConvertOptions{}); ok {
			streamed++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if streamed != len(jobs) {
		t.Fatalf("streamed %d of %d jobs", streamed, len(jobs))
	}

	// Scenario specs resolve through the facade.
	if len(fairsched.ScenarioNames()) < 4 {
		t.Fatalf("want at least 4 builtin scenarios, got %v", fairsched.ScenarioNames())
	}
	loadScaled, err := fairsched.ParseScenario("load=1.4")
	if err != nil {
		t.Fatal(err)
	}

	// A two-scenario campaign over the in-memory workload.
	cells, err := fairsched.Campaign{
		Sources:   []fairsched.ScenarioSource{fairsched.JobsSource("mem", jobs, 100)},
		Scenarios: []fairsched.Scenario{fairsched.BuiltinScenarios()[0], loadScaled},
		Seeds:     []int64{1},
		Specs: []fairsched.PolicySpec{
			mustPolicy(t, "fcfs"),
			mustPolicy(t, "cplant24.nomax.all"),
		},
		Study:    fairsched.StudyConfig{SystemSize: 100},
		Parallel: 2,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}

	var report strings.Builder
	fairsched.RenderCampaign(&report, cells)
	for _, want := range []string{"mem × baseline", "mem × load=1.4", "fcfs", "cplant24.nomax.all"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("campaign report missing %q:\n%s", want, report.String())
		}
	}

	if got := fairsched.FairshareEpochFor(1038700800, 0); got != -(1038700800 % 86400) {
		t.Errorf("FairshareEpochFor = %d", got)
	}
}

func mustPolicy(t *testing.T, name string) fairsched.PolicySpec {
	t.Helper()
	spec, err := fairsched.PolicyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
