package fairsched_test

import (
	"bytes"
	"strings"
	"testing"

	"fairsched"
)

// The facade's scenario-engine surface: stream a trace, build a campaign
// over built-in scenarios, render the report.
func TestPublicAPICampaignFlow(t *testing.T) {
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{Seed: 5, Scale: 0.02, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through the streaming scanner.
	var buf bytes.Buffer
	if err := fairsched.WriteSWF(&buf, jobs, 100); err != nil {
		t.Fatal(err)
	}
	sc := fairsched.NewSWFScanner(bytes.NewReader(buf.Bytes()))
	streamed := 0
	for sc.Scan() {
		if _, ok := fairsched.ConvertSWFRecord(sc.Record(), fairsched.SWFConvertOptions{}); ok {
			streamed++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if streamed != len(jobs) {
		t.Fatalf("streamed %d of %d jobs", streamed, len(jobs))
	}

	// Scenario specs resolve through the facade.
	if len(fairsched.ScenarioNames()) < 4 {
		t.Fatalf("want at least 4 builtin scenarios, got %v", fairsched.ScenarioNames())
	}
	loadScaled, err := fairsched.ParseScenario("load=1.4")
	if err != nil {
		t.Fatal(err)
	}

	// A two-scenario campaign over the in-memory workload.
	cells, err := fairsched.Campaign{
		Sources:   []fairsched.ScenarioSource{fairsched.JobsSource("mem", jobs, 100)},
		Scenarios: []fairsched.Scenario{fairsched.BuiltinScenarios()[0], loadScaled},
		Seeds:     []int64{1},
		Specs: []fairsched.PolicySpec{
			mustPolicy(t, "fcfs"),
			mustPolicy(t, "cplant24.nomax.all"),
		},
		Study:    fairsched.StudyConfig{SystemSize: 100},
		Parallel: 2,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}

	var report strings.Builder
	fairsched.RenderCampaign(&report, cells)
	for _, want := range []string{"mem × baseline", "mem × load=1.4", "fcfs", "cplant24.nomax.all"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("campaign report missing %q:\n%s", want, report.String())
		}
	}

	if got := fairsched.FairshareEpochFor(1038700800, 0); got != -(1038700800 % 86400) {
		t.Errorf("FairshareEpochFor = %d", got)
	}
}

// The facade's per-user SLO surface: parse a tagging spec, sweep it
// through a campaign, read the attainment table, and cross-check the
// online observer against the post-run reference.
func TestPublicAPISLOFlow(t *testing.T) {
	jobs, err := fairsched.GenerateWorkload(fairsched.WorkloadConfig{Seed: 5, Scale: 0.02, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	tagger, err := fairsched.ParseSLO("p50:30m,p90:4h,default:24h")
	if err != nil {
		t.Fatal(err)
	}
	tagged := fairsched.BuiltinScenarios()[0].With(tagger)
	cells, err := fairsched.Campaign{
		Sources:   []fairsched.ScenarioSource{fairsched.JobsSource("mem", jobs, 100)},
		Scenarios: []fairsched.Scenario{tagged},
		Specs:     []fairsched.PolicySpec{mustPolicy(t, "fcfs")},
		Study:     fairsched.StudyConfig{SystemSize: 100},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].SLOs == nil || cells[0].SLOs[0] == nil {
		t.Fatal("campaign cell carries no SLO summary")
	}
	if got := cells[0].SLOs[0].Total.Jobs; got == 0 {
		t.Fatal("SLO summary measured no jobs")
	}
	var report strings.Builder
	fairsched.RenderCampaign(&report, cells)
	for _, want := range []string{"SLO attainment", "p50", "default", "(all)"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("campaign report missing %q:\n%s", want, report.String())
		}
	}

	// Library route: assignment built by hand, observer attached to a bare
	// simulator, output equal to the post-run reference.
	b := fairsched.NewSLOBuilder()
	b.AddClass("gold", fairsched.SLOTarget{Wait: 1800, Slowdown: 8})
	for _, j := range jobs {
		b.Tag(j.User, "gold")
	}
	asg := b.Build()
	engine := fairsched.NewHybridFST()
	obs := fairsched.NewSLOObserver(asg, engine)
	pol, err := fairsched.NewPolicy(mustPolicy(t, "easy"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fairsched.NewSimulator(fairsched.SimConfig{SystemSize: 100}, pol, engine, obs).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ref := fairsched.SLOFromRecords(asg, res.Records, engine.Table())
	if got, want := obs.Summary().Total, ref.Total; got != want {
		t.Fatalf("online observer %+v != reference %+v", got, want)
	}
}

func mustPolicy(t *testing.T, name string) fairsched.PolicySpec {
	t.Helper()
	spec, err := fairsched.PolicyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
